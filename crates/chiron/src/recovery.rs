//! Crash-safe training recovery: full-run checkpoints and resumable
//! training.
//!
//! A [`RunCheckpoint`] freezes *everything* a training run owns — the
//! environment (budget ledger, channel RNG, fault-process configuration,
//! oracle state), both PPO agents (parameters, Adam moments, exploration
//! RNGs), the exterior history window, the rollout buffers, and the reward
//! curve so far. Restoring it and continuing produces the bitwise-identical
//! trajectory the uninterrupted run would have produced: every random draw
//! travels inside the checkpoint, so there is nothing left to drift.
//!
//! Checkpoints are written atomically (temp file + rename, see
//! [`chiron_nn::write_atomic`]) with a versioned header, an
//! architecture/environment fingerprint, and an FNV-1a integrity trailer,
//! so a crash mid-write leaves the previous checkpoint intact and a
//! checkpoint can never be restored into a mismatched run. Rotating saves
//! ([`RunCheckpoint::save_rotating`]) keep the previous generation in a
//! `.prev` sibling, and [`RunCheckpoint::load_with_fallback`] falls back to
//! it when the latest file is truncated or bit-flipped. All failure modes
//! are typed ([`ResumeError`]); a corrupted or truncated file is rejected,
//! never a panic.

use crate::Chiron;
use crate::ExteriorState;
use chiron_drl::{AgentFullState, AgentStateError, RolloutBuffer};
use chiron_fedsim::metrics::{EventLog, ResilienceEvent};
use chiron_fedsim::{EdgeLearningEnv, EnvState, EnvStateError};
use chiron_nn::write_atomic;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// Run-checkpoint format version; bump on layout changes.
pub const RUN_CHECKPOINT_VERSION: u32 = 1;

/// A complete, serializable freeze of a Chiron training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunCheckpoint {
    /// Format version ([`RUN_CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Architecture + environment fingerprint; restore refuses a mismatch.
    pub fingerprint: String,
    /// Per-episode rewards of the episodes completed so far.
    pub completed_rewards: Vec<f64>,
    /// [`Chiron::episodes_trained`] at capture time.
    pub episodes_trained: usize,
    /// Full environment state (ledger, RNG, faults, oracle).
    pub env: EnvState,
    /// Exterior agent: parameters, optimizers, RNG.
    pub exterior: AgentFullState,
    /// Inner agent: parameters, optimizers, RNG.
    pub inner: AgentFullState,
    /// The exterior agent's sliding history window.
    pub exterior_state: ExteriorState,
    /// Exterior rollout buffer (empty at episode boundaries).
    pub buf_exterior: RolloutBuffer,
    /// Inner rollout buffer (empty at episode boundaries).
    pub buf_inner: RolloutBuffer,
}

/// Why a [`RunCheckpoint`] failed to load or restore.
#[derive(Debug)]
pub enum ResumeError {
    /// Reading or writing the checkpoint file failed.
    Io(std::io::Error),
    /// The file is not a parseable checkpoint (truncated, corrupted, or
    /// not JSON).
    Malformed(String),
    /// The integrity trailer does not match the payload: the file was
    /// bit-flipped or truncated after it was written.
    Corrupted {
        /// Digest recorded in the trailer.
        expected: String,
        /// Digest of the payload as read.
        found: String,
    },
    /// The recovery options themselves are invalid (for example a zero
    /// checkpoint interval).
    InvalidOptions(String),
    /// The checkpoint was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file.
        found: u32,
    },
    /// The checkpoint belongs to a differently-shaped run (agent
    /// architectures, fleet size, or budget differ).
    FingerprintMismatch {
        /// Fingerprint in the checkpoint.
        expected: String,
        /// Fingerprint of the target mechanism + environment.
        found: String,
    },
    /// The environment state could not be restored.
    Env(EnvStateError),
    /// An agent's state could not be restored.
    Agent(AgentStateError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::Io(e) => write!(f, "checkpoint I/O failed: {e}"),
            ResumeError::Malformed(e) => write!(f, "malformed run checkpoint: {e}"),
            ResumeError::Corrupted { expected, found } => write!(
                f,
                "run checkpoint failed its integrity check \
                 (trailer {expected}, payload {found}): file is corrupted"
            ),
            ResumeError::InvalidOptions(msg) => write!(f, "invalid recovery options: {msg}"),
            ResumeError::VersionMismatch { found } => write!(
                f,
                "run checkpoint version {found} != supported {RUN_CHECKPOINT_VERSION}"
            ),
            ResumeError::FingerprintMismatch { expected, found } => write!(
                f,
                "run fingerprint mismatch: checkpoint '{expected}' vs target '{found}'"
            ),
            ResumeError::Env(e) => write!(f, "environment restore failed: {e}"),
            ResumeError::Agent(e) => write!(f, "agent restore failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResumeError::Io(e) => Some(e),
            ResumeError::Env(e) => Some(e),
            ResumeError::Agent(e) => Some(e),
            ResumeError::Malformed(_)
            | ResumeError::Corrupted { .. }
            | ResumeError::InvalidOptions(_)
            | ResumeError::VersionMismatch { .. }
            | ResumeError::FingerprintMismatch { .. } => None,
        }
    }
}

/// Where and how often [`Chiron::train_recoverable`] checkpoints.
#[derive(Debug, Clone)]
pub struct RecoveryOptions {
    /// Checkpoint file path. If the file exists when training starts, the
    /// run resumes from it instead of starting fresh.
    pub checkpoint_path: PathBuf,
    /// Write a checkpoint every this many completed episodes.
    pub checkpoint_every: usize,
}

impl RecoveryOptions {
    /// Checkpoints to `path` every `every` episodes.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(path: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        Self {
            checkpoint_path: path.into(),
            checkpoint_every: every,
        }
    }

    /// Non-panicking [`RecoveryOptions::new`] for user-supplied intervals.
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError::InvalidOptions`] if `every` is zero.
    pub fn try_new(path: impl Into<PathBuf>, every: usize) -> Result<Self, ResumeError> {
        if every == 0 {
            return Err(ResumeError::InvalidOptions(
                "checkpoint interval must be positive".into(),
            ));
        }
        Ok(Self {
            checkpoint_path: path.into(),
            checkpoint_every: every,
        })
    }
}

/// FNV-1a 64-bit digest of `bytes` — the checkpoint integrity hash. Not
/// cryptographic; it exists to catch truncation and bit flips, and a
/// single-byte change always changes the digest (each step multiplies by
/// an odd prime, which is invertible mod 2^64).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Integrity trailer marker; the on-disk format is
/// `<json>\n#fnv1a=<16 hex digits>\n`. Files without a trailer (written
/// before the trailer existed) still load — JSON parsing and the
/// fingerprint check remain the backstop for those.
const INTEGRITY_MARKER: &str = "\n#fnv1a=";

/// Splits `contents` into the JSON payload and the recorded digest, if a
/// trailer is present.
fn split_integrity_trailer(contents: &str) -> (&str, Option<&str>) {
    match contents.rfind(INTEGRITY_MARKER) {
        Some(pos) => {
            let digest = contents[pos + INTEGRITY_MARKER.len()..].trim_end();
            (&contents[..pos], Some(digest))
        }
        None => (contents, None),
    }
}

/// The `.prev` sibling holding the previous checkpoint generation.
fn previous_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_owned();
    os.push(".prev");
    PathBuf::from(os)
}

/// A cheap deterministic digest of the fleet's node parameters. The fleet
/// is rebuilt from the environment config + seed, not stored in the
/// checkpoint, so restoring into an environment built from a different
/// seed would silently change the dynamics — the digest catches that.
fn fleet_digest(env: &EdgeLearningEnv) -> String {
    let mut acc = 0u64;
    let fleet = env.fleet();
    for i in 0..fleet.len() {
        // Read straight off the column store — digesting a 1M-node fleet
        // must not materialize 1M `EdgeNode`s. Field order matches the
        // historical per-node digest, so checkpoints stay compatible.
        let p = fleet.params(i);
        for v in [
            p.freq_max,
            p.freq_min,
            p.upload_time,
            p.data_bits,
            p.cycles_per_bit,
            p.capacitance,
        ] {
            acc = acc.rotate_left(7) ^ v.to_bits();
        }
    }
    format!("{acc:016x}")
}

/// The fingerprint restore checks: both agents' network architectures plus
/// the environment's fleet (size and parameter digest) and budget.
fn fingerprint(
    exterior: &AgentFullState,
    inner: &AgentFullState,
    env_state: &EnvState,
    env: &EdgeLearningEnv,
) -> String {
    format!(
        "{}|{}|{}|{}|nodes:{}|fleet:{}|budget:{}",
        exterior.snapshot.actor.architecture,
        exterior.snapshot.critic.architecture,
        inner.snapshot.actor.architecture,
        inner.snapshot.critic.architecture,
        env_state.num_nodes,
        fleet_digest(env),
        env_state.ledger.total(),
    )
}

impl RunCheckpoint {
    /// Freezes the current run state.
    ///
    /// # Errors
    ///
    /// Returns [`EnvStateError::OracleUnsupported`] if the environment's
    /// oracle cannot capture state.
    pub fn capture(
        mechanism: &mut Chiron,
        env: &EdgeLearningEnv,
        completed_rewards: &[f64],
        buf_exterior: &RolloutBuffer,
        buf_inner: &RolloutBuffer,
    ) -> Result<Self, EnvStateError> {
        let env_state = env.capture_state()?;
        let exterior = mechanism.exterior.full_state("chiron-exterior");
        let inner = mechanism.inner.full_state("chiron-inner");
        let fp = fingerprint(&exterior, &inner, &env_state, env);
        Ok(Self {
            version: RUN_CHECKPOINT_VERSION,
            fingerprint: fp,
            completed_rewards: completed_rewards.to_vec(),
            episodes_trained: mechanism.episodes_trained,
            env: env_state,
            exterior,
            inner,
            exterior_state: mechanism.state.clone(),
            buf_exterior: buf_exterior.clone(),
            buf_inner: buf_inner.clone(),
        })
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("run checkpoint serialization is infallible")
    }

    /// Parses and validates a JSON run checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError::Malformed`] or `VersionMismatch`.
    pub fn from_json(json: &str) -> Result<Self, ResumeError> {
        let ckpt: RunCheckpoint =
            serde_json::from_str(json).map_err(|e| ResumeError::Malformed(e.to_string()))?;
        if ckpt.version != RUN_CHECKPOINT_VERSION {
            return Err(ResumeError::VersionMismatch {
                found: ckpt.version,
            });
        }
        Ok(ckpt)
    }

    /// Writes the checkpoint atomically (temp file + rename), appending
    /// the FNV-1a integrity trailer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; on failure the previous checkpoint file, if
    /// any, is untouched.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = self.to_json();
        let payload = format!("{json}{INTEGRITY_MARKER}{:016x}\n", fnv1a(json.as_bytes()));
        write_atomic(path, payload.as_bytes())
    }

    /// [`RunCheckpoint::save`], first rotating an existing file at `path`
    /// to its `.prev` sibling so the previous generation survives a save
    /// that later turns out corrupted on disk.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the rotation or the write.
    pub fn save_rotating(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if path.exists() {
            std::fs::rename(path, previous_path(path))?;
        }
        self.save(path)
    }

    /// Loads and validates a checkpoint file, verifying the integrity
    /// trailer when one is present.
    ///
    /// # Errors
    ///
    /// Returns [`ResumeError::Io`] for file errors, `Corrupted` for a
    /// digest mismatch, and `Malformed` / `VersionMismatch` for invalid
    /// contents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ResumeError> {
        let raw = std::fs::read(path).map_err(ResumeError::Io)?;
        let contents = String::from_utf8(raw)
            .map_err(|e| ResumeError::Malformed(format!("checkpoint is not UTF-8: {e}")))?;
        let (json, trailer) = split_integrity_trailer(&contents);
        if let Some(expected) = trailer {
            let found = format!("{:016x}", fnv1a(json.as_bytes()));
            if expected != found {
                return Err(ResumeError::Corrupted {
                    expected: expected.to_owned(),
                    found,
                });
            }
        }
        Self::from_json(json)
    }

    /// [`RunCheckpoint::load`] with fallback: if `path` is unreadable,
    /// corrupted, or malformed, the `.prev` sibling written by
    /// [`RunCheckpoint::save_rotating`] is tried. Returns the checkpoint
    /// and whether the fallback was taken.
    ///
    /// # Errors
    ///
    /// Returns the *primary* file's error when neither generation loads,
    /// so the root cause is what surfaces.
    pub fn load_with_fallback(path: impl AsRef<Path>) -> Result<(Self, bool), ResumeError> {
        let path = path.as_ref();
        match Self::load(path) {
            Ok(ckpt) => Ok((ckpt, false)),
            Err(primary) => match Self::load(previous_path(path)) {
                Ok(ckpt) => Ok((ckpt, true)),
                Err(_) => Err(primary),
            },
        }
    }

    /// Whether `path` or its `.prev` sibling exists — i.e. whether a
    /// resume attempt is worthwhile.
    pub fn any_exists(path: impl AsRef<Path>) -> bool {
        let path = path.as_ref();
        path.exists() || previous_path(path).exists()
    }

    /// Removes the checkpoint file and its `.prev` sibling, ignoring
    /// files that are already gone.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than `NotFound`.
    pub fn remove(path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        for p in [path.to_path_buf(), previous_path(path)] {
            match std::fs::remove_file(&p) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Restores the frozen run into `mechanism` + `env`, returning the
    /// completed rewards and the two rollout buffers.
    ///
    /// The fingerprint is checked before anything is mutated.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ResumeError`] on any mismatch.
    #[allow(clippy::type_complexity)]
    pub fn restore_into(
        &self,
        mechanism: &mut Chiron,
        env: &mut EdgeLearningEnv,
    ) -> Result<(Vec<f64>, RolloutBuffer, RolloutBuffer), ResumeError> {
        let target_env = env.capture_state().map_err(ResumeError::Env)?;
        let target_fp = fingerprint(
            &mechanism.exterior.full_state("chiron-exterior"),
            &mechanism.inner.full_state("chiron-inner"),
            &target_env,
            env,
        );
        if target_fp != self.fingerprint {
            return Err(ResumeError::FingerprintMismatch {
                expected: self.fingerprint.clone(),
                found: target_fp,
            });
        }
        env.restore_state(&self.env).map_err(ResumeError::Env)?;
        mechanism
            .exterior
            .restore_full(&self.exterior)
            .map_err(ResumeError::Agent)?;
        mechanism
            .inner
            .restore_full(&self.inner)
            .map_err(ResumeError::Agent)?;
        mechanism.state = self.exterior_state.clone();
        mechanism.episodes_trained = self.episodes_trained;
        Ok((
            self.completed_rewards.clone(),
            self.buf_exterior.clone(),
            self.buf_inner.clone(),
        ))
    }
}

impl Chiron {
    /// [`Mechanism::train`](crate::Mechanism::train) with crash safety: the
    /// run checkpoints itself to `options.checkpoint_path` every
    /// `options.checkpoint_every` episodes, and if that file already exists
    /// when training starts, the run resumes from it — skipping the
    /// already-completed episodes and replaying the remainder
    /// bitwise-identically to an uninterrupted run.
    ///
    /// Resilience events (environment faults, rolled-back PPO updates, the
    /// resume itself) are appended to `log`.
    ///
    /// Returns the per-episode rewards of *all* `episodes` episodes,
    /// completed-before-resume ones included.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ResumeError`] if an existing checkpoint cannot be
    /// loaded/restored or a new one cannot be written. Training never
    /// starts from a checkpoint it could not fully validate.
    pub fn train_recoverable(
        &mut self,
        env: &mut EdgeLearningEnv,
        episodes: usize,
        options: &RecoveryOptions,
        log: &mut EventLog,
    ) -> Result<Vec<f64>, ResumeError> {
        if options.checkpoint_every == 0 {
            return Err(ResumeError::InvalidOptions(
                "checkpoint interval must be positive".into(),
            ));
        }
        static CHECKPOINTS_SAVED: chiron_telemetry::Counter =
            chiron_telemetry::Counter::new("chiron.checkpoints.saved");
        static RESUMES: chiron_telemetry::Counter =
            chiron_telemetry::Counter::new("chiron.resumes");
        static FALLBACKS: chiron_telemetry::Counter =
            chiron_telemetry::Counter::new("chiron.checkpoint.fallbacks");
        let (mut rewards, mut buf_e, mut buf_i) =
            if RunCheckpoint::any_exists(&options.checkpoint_path) {
                let (ckpt, fell_back) =
                    RunCheckpoint::load_with_fallback(&options.checkpoint_path)?;
                if fell_back {
                    FALLBACKS.add(1);
                }
                let restored = ckpt.restore_into(self, env)?;
                let ev = ResilienceEvent::Resumed {
                    episode: self.episodes_trained,
                };
                ev.emit(0);
                RESUMES.add(1);
                log.push(self.episodes_trained, 0, ev);
                restored
            } else {
                (Vec::new(), RolloutBuffer::new(), RolloutBuffer::new())
            };

        while rewards.len() < episodes {
            let r = self.train_one_episode(env, &mut buf_e, &mut buf_i, Some(log));
            rewards.push(r);
            // A checkpoint also lands after the final episode, so a later
            // call with a larger episode count extends the run seamlessly.
            if rewards.len().is_multiple_of(options.checkpoint_every) || rewards.len() == episodes {
                let _ckpt_span = chiron_telemetry::span("checkpoint_save");
                let ckpt = RunCheckpoint::capture(self, env, &rewards, &buf_e, &buf_i)
                    .map_err(ResumeError::Env)?;
                ckpt.save_rotating(&options.checkpoint_path)
                    .map_err(ResumeError::Io)?;
                CHECKPOINTS_SAVED.add(1);
            }
        }
        Ok(rewards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChironConfig, EpisodeRun, Mechanism};
    use chiron_data::DatasetKind;
    use chiron_fedsim::EnvConfig;

    fn env(budget: f64, seed: u64) -> EdgeLearningEnv {
        EdgeLearningEnv::new(
            EnvConfig {
                oracle_noise: 0.0,
                ..EnvConfig::paper_small(DatasetKind::MnistLike, budget)
            },
            seed,
        )
    }

    fn tmp_ckpt(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("chiron_recovery_test");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join(name);
        // Clear *both* generations: a stale `.prev` sibling from an earlier
        // process would otherwise be picked up by the resume fallback.
        RunCheckpoint::remove(&path).expect("clear stale checkpoints");
        path
    }

    #[test]
    fn recoverable_training_matches_plain_training() {
        let path = tmp_ckpt("match_plain.json");
        let mut log = EventLog::new();
        let mut e1 = env(40.0, 7);
        let mut m1 = Chiron::new(&e1, ChironConfig::fast(), 7);
        let plain = m1.train(&mut e1, 4);

        let mut e2 = env(40.0, 7);
        let mut m2 = Chiron::new(&e2, ChironConfig::fast(), 7);
        let recoverable = m2
            .train_recoverable(&mut e2, 4, &RecoveryOptions::new(&path, 2), &mut log)
            .expect("recoverable run");
        assert_eq!(plain, recoverable, "checkpointing must not change training");
        RunCheckpoint::remove(&path).ok();
    }

    #[test]
    fn kill_and_resume_is_bitwise_identical() {
        let path = tmp_ckpt("kill_resume.json");
        let mut log = EventLog::new();

        // Reference: 6 uninterrupted episodes.
        let mut e_ref = env(40.0, 9);
        let mut m_ref = Chiron::new(&e_ref, ChironConfig::fast(), 9);
        let reference = m_ref.train(&mut e_ref, 6);

        // Crashed run: 3 episodes (a checkpoint lands at episode 3), then
        // every in-memory object is dropped.
        {
            let mut e = env(40.0, 9);
            let mut m = Chiron::new(&e, ChironConfig::fast(), 9);
            m.train_recoverable(&mut e, 3, &RecoveryOptions::new(&path, 3), &mut log)
                .expect("first run");
        }

        // Resume with a fresh mechanism built from a *different* agent seed
        // — every bit of agent state must come from the checkpoint, none
        // from the constructor. (The env seed must match: the fleet is
        // derived from it, and the fingerprint enforces that.)
        let mut e = env(40.0, 9);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 4321);
        let resumed = m
            .train_recoverable(&mut e, 6, &RecoveryOptions::new(&path, 3), &mut log)
            .expect("resumed run");
        assert_eq!(reference, resumed, "resumed tail must be bitwise identical");
        assert_eq!(log.count("resumed"), 1);
        assert_eq!(m.snapshot(), m_ref.snapshot());

        // And the two mechanisms keep agreeing on a fresh evaluation.
        let (s_ref, _) = m_ref.run_episode(&mut e_ref);
        let (s_res, _) = m.run_episode(&mut e);
        assert_eq!(s_ref.rounds, s_res.rounds);
        assert_eq!(
            s_ref.final_accuracy.to_bits(),
            s_res.final_accuracy.to_bits()
        );
        RunCheckpoint::remove(&path).ok();
    }

    #[test]
    fn corrupted_checkpoint_is_rejected_not_panicked() {
        let path = tmp_ckpt("corrupt.json");
        let mut e = env(40.0, 3);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 3);
        let mut log = EventLog::new();

        // Truncated JSON.
        std::fs::write(&path, "{\"version\":1,\"fingerp").expect("write");
        let err = m
            .train_recoverable(&mut e, 2, &RecoveryOptions::new(&path, 1), &mut log)
            .expect_err("truncated file must be rejected");
        assert!(matches!(err, ResumeError::Malformed(_)), "got {err:?}");

        // Not JSON at all.
        std::fs::write(&path, "definitely not json").expect("write");
        let err = RunCheckpoint::load(&path).expect_err("garbage rejected");
        assert!(matches!(err, ResumeError::Malformed(_)));

        RunCheckpoint::remove(&path).ok();
    }

    #[test]
    fn integrity_trailer_catches_bit_flips() {
        let path = tmp_ckpt("trailer.json");
        let e = env(40.0, 6);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 6);
        let buf = RolloutBuffer::new();
        let ckpt = RunCheckpoint::capture(&mut m, &e, &[1.0], &buf, &buf).expect("capture");
        ckpt.save(&path).expect("save");

        // Clean file round-trips.
        let loaded = RunCheckpoint::load(&path).expect("clean load");
        assert_eq!(loaded, ckpt);

        // Flip one byte inside the JSON payload: the digest must catch it
        // even if the result is still valid JSON.
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let err = RunCheckpoint::load(&path).expect_err("flip rejected");
        assert!(
            matches!(
                err,
                ResumeError::Corrupted { .. } | ResumeError::Malformed(_)
            ),
            "got {err:?}"
        );
        RunCheckpoint::remove(&path).ok();
    }

    #[test]
    fn rotating_save_falls_back_to_previous_generation() {
        let path = tmp_ckpt("rotate.json");
        let e = env(40.0, 8);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 8);
        let buf = RolloutBuffer::new();
        let gen1 = RunCheckpoint::capture(&mut m, &e, &[1.0], &buf, &buf).expect("capture");
        gen1.save_rotating(&path).expect("save gen1");
        let gen2 = RunCheckpoint::capture(&mut m, &e, &[1.0, 2.0], &buf, &buf).expect("capture");
        gen2.save_rotating(&path).expect("save gen2");

        // Both generations intact: primary wins, no fallback.
        let (loaded, fell_back) = RunCheckpoint::load_with_fallback(&path).expect("load");
        assert!(!fell_back);
        assert_eq!(loaded.completed_rewards, vec![1.0, 2.0]);

        // Corrupt the primary: the previous generation is served instead.
        std::fs::write(&path, "{\"version\":1,\"trunc").expect("corrupt");
        let (loaded, fell_back) = RunCheckpoint::load_with_fallback(&path).expect("fallback");
        assert!(fell_back);
        assert_eq!(loaded.completed_rewards, vec![1.0]);

        // Both gone: typed error, and the primary's error is the one
        // reported.
        RunCheckpoint::remove(&path).expect("cleanup");
        assert!(!RunCheckpoint::any_exists(&path));
        let err = RunCheckpoint::load_with_fallback(&path).expect_err("both missing");
        assert!(matches!(err, ResumeError::Io(_)));
    }

    #[test]
    fn try_new_rejects_zero_interval() {
        let err = RecoveryOptions::try_new("x.json", 0).expect_err("zero interval");
        assert!(matches!(err, ResumeError::InvalidOptions(_)));
        assert!(RecoveryOptions::try_new("x.json", 3).is_ok());
    }

    #[test]
    fn wrong_version_and_fingerprint_are_rejected() {
        let path = tmp_ckpt("version_fp.json");
        let mut e = env(40.0, 5);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 5);
        let buf = RolloutBuffer::new();
        let mut ckpt = RunCheckpoint::capture(&mut m, &e, &[1.0], &buf, &buf).expect("capture");

        let mut wrong_version = ckpt.clone();
        wrong_version.version = 999;
        let json = serde_json::to_string(&wrong_version).expect("serializable");
        let err = RunCheckpoint::from_json(&json).expect_err("must reject");
        assert!(matches!(err, ResumeError::VersionMismatch { found: 999 }));

        ckpt.fingerprint = "someone-else's-run".to_owned();
        let err = ckpt.restore_into(&mut m, &mut e).expect_err("must reject");
        assert!(matches!(err, ResumeError::FingerprintMismatch { .. }));
        RunCheckpoint::remove(&path).ok();
    }

    #[test]
    fn mid_episode_checkpoint_resumes_remaining_rounds() {
        // Capture mid-episode (non-empty buffers, env mid-round-sequence),
        // restore into fresh objects, and verify the remaining rounds are
        // identical.
        let mut e = env(60.0, 11);
        let mut m = Chiron::new(&e, ChironConfig::fast(), 11);
        m.train(&mut e, 1);

        e.reset();
        m.begin_episode(&e);
        let mut outcomes_a = Vec::new();
        for _ in 0..2 {
            let prices = m.decide_prices(&e, false);
            outcomes_a.push(e.step(&prices));
        }
        let buf = RolloutBuffer::new();
        let ckpt = RunCheckpoint::capture(&mut m, &e, &[], &buf, &buf).expect("capture");

        // Continue the original.
        for _ in 0..3 {
            let prices = m.decide_prices(&e, false);
            outcomes_a.push(e.step(&prices));
        }

        // Fresh twin resumes and must replay the same tail.
        let mut e2 = env(60.0, 11);
        let mut m2 = Chiron::new(&e2, ChironConfig::fast(), 77);
        ckpt.restore_into(&mut m2, &mut e2).expect("restore");
        for (k, expected) in outcomes_a.iter().enumerate().skip(2) {
            let prices = m2.decide_prices(&e2, false);
            let out = e2.step(&prices);
            assert_eq!(out.round, expected.round);
            assert_eq!(
                out.accuracy.to_bits(),
                expected.accuracy.to_bits(),
                "round {k} accuracy must match bitwise"
            );
            assert_eq!(
                out.payment_total.to_bits(),
                expected.payment_total.to_bits()
            );
        }
    }
}
