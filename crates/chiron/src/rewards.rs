//! The paper's reward functions (Eqns. 14 and 15).

use chiron_fedsim::RoundOutcome;

/// Exterior reward (Eqn. 14): `λ·(A(ω_k) − A(ω_{k−1})) − w_T·T_k`.
///
/// The printed equation scales *both* terms by λ; with λ = 2000 and
/// `T_k ≈ 25 s` that would make the time term (−50,000) drown the accuracy
/// term (≈ +20) by three orders of magnitude, contradicting the overall
/// objective `u = λ·A(ω_K) − Σ_k T_k` of Eqn. 9. We therefore follow
/// Eqn. 9's scaling and expose the time weight `w_T` (1.0 by default) for
/// the reward ablation (`DESIGN.md` §5).
///
/// # Examples
///
/// ```
/// use chiron::exterior_reward;
///
/// // +2 % accuracy at λ = 2000, 25 s round → 2000·0.02 − 25 = 15.
/// let r = exterior_reward(0.02, 25.0, 2000.0, 1.0);
/// assert!((r - 15.0).abs() < 1e-9);
/// ```
pub fn exterior_reward(accuracy_delta: f64, round_time: f64, lambda: f64, time_weight: f64) -> f64 {
    lambda * accuracy_delta - time_weight * round_time
}

/// Inner reward (Eqn. 15): `−Σ_{i=1}^{N} (T_k − T_{i,k})`, the negated
/// total idle time summed over **all** nodes. A node that declined to
/// participate has `T_{i,k} = 0` and idles for the entire round, so
/// starving nodes with unattractive prices is maximally penalized —
/// exactly the reading of Eqn. 15 that couples time consistency with full
/// participation (Lemma 1's premise).
///
/// # Examples
///
/// ```
/// use chiron::inner_reward;
///
/// assert_eq!(inner_reward(&[10.0, 10.0]), 0.0); // perfectly consistent
/// assert_eq!(inner_reward(&[5.0, 10.0]), -5.0);
/// // A starved node (time 0) idles for the whole 10 s round.
/// assert_eq!(inner_reward(&[0.0, 10.0, 10.0]), -10.0);
/// ```
pub fn inner_reward(node_times: &[f64]) -> f64 {
    -chiron_fedsim::metrics::total_idle_time(node_times)
}

/// Convenience: both rewards straight from a [`RoundOutcome`].
pub fn rewards_from_outcome(outcome: &RoundOutcome, lambda: f64, time_weight: f64) -> (f64, f64) {
    let r_e = exterior_reward(
        outcome.accuracy_delta(),
        outcome.round_time,
        lambda,
        time_weight,
    );
    let r_i = inner_reward(&outcome.all_node_times());
    (r_e, r_i)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exterior_reward_trades_accuracy_against_time() {
        // A bigger accuracy jump beats a slightly longer round.
        let fast_small = exterior_reward(0.005, 15.0, 2000.0, 1.0); // −5
        let slow_large = exterior_reward(0.02, 25.0, 2000.0, 1.0); // +15
        assert!(slow_large > fast_small);
    }

    #[test]
    fn zero_time_weight_isolates_accuracy() {
        let r = exterior_reward(0.01, 1000.0, 2000.0, 0.0);
        assert_eq!(r, 20.0);
    }

    #[test]
    fn inner_reward_is_maximal_at_consistency() {
        assert_eq!(inner_reward(&[7.0, 7.0, 7.0]), 0.0);
        assert!(inner_reward(&[6.0, 7.0, 7.0]) < 0.0);
        // More imbalance ⇒ lower reward.
        assert!(inner_reward(&[1.0, 7.0]) < inner_reward(&[6.0, 7.0]));
    }

    #[test]
    fn inner_reward_handles_empty_round() {
        assert_eq!(inner_reward(&[]), 0.0);
    }
}
