//! Deterministic nested-scope task scheduler built on [`crate::pool`].
//!
//! The worker pool (PR 1) parallelizes *fine-grained* tensor regions:
//! matmul tiles, im2col rows, batch lanes. This module layers a
//! *coarse-grained* scheduler on top of the same pool for outer regions —
//! federated nodes training local models, sweep cells of a figure panel,
//! replicated evaluation seeds. A coarse region is opened with [`scope`],
//! which hands the body a [`TaskScope`] whose `map`/`map_mut`/`run`
//! methods fan independent tasks out across the pool workers.
//!
//! # Scoping rules
//!
//! - **Outer regions claim the workers.** A `TaskScope` fan-out submits
//!   one block per task to the shared pool; pool workers that pick the
//!   tasks up run them with `ON_WORKER` set, so any tensor-level region a
//!   task opens (a matmul inside local training) executes on the serial
//!   path, inline, on that worker. Coarse regions therefore never compete
//!   with their own inner regions for threads, and nesting cannot
//!   deadlock: workers never block on a latch, only callers do.
//! - **The caller participates.** As in every pool region the spawning
//!   thread drains the block dispenser too; inner tensor regions it opens
//!   while draining cooperate with the remaining idle workers.
//! - **Serial fallback is bitwise-identical.** With one pool thread, a
//!   single task, coarse scheduling disabled ([`set_coarse`] /
//!   `CHIRON_COARSE=0`), or when already on a worker, the fan-out
//!   degenerates to an in-order inline loop — the exact serial program.
//!
//! # Determinism argument
//!
//! Partitioning is derived from problem size only — one block per task,
//! never a thread-count-dependent split — and results are joined in
//! ascending task index order ([`crate::pool::parallel_chunks_map`]
//! returns block-ordered results). Each task owns its slot exclusively,
//! so execution order cannot leak into the values; reductions the caller
//! performs over the returned `Vec` are sequential and fixed-order.
//! Consequently every `TaskScope` fan-out is bitwise identical to its
//! serial fallback at any `CHIRON_THREADS`, which
//! `tests/parallel_determinism.rs` asserts at 1, 4, and 8 threads.
//!
//! # Telemetry
//!
//! Each scope opens a `chiron-telemetry` span named after the scope
//! (wall + thread-CPU ns) and maintains:
//! `tensor.scope.regions` / `tensor.scope.tasks` /
//! `tensor.scope.inline_regions` (counters) and
//! `tensor.scope.queue_depth` (histogram of tasks submitted per fan-out
//! to the steal-free FIFO queue).

use std::cell::Cell;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::pool;

static SCOPE_REGIONS: chiron_telemetry::Counter =
    chiron_telemetry::Counter::new("tensor.scope.regions");
static SCOPE_TASKS: chiron_telemetry::Counter =
    chiron_telemetry::Counter::new("tensor.scope.tasks");
static SCOPE_INLINE: chiron_telemetry::Counter =
    chiron_telemetry::Counter::new("tensor.scope.inline_regions");
static SCOPE_QUEUE_DEPTH: chiron_telemetry::Histogram =
    chiron_telemetry::Histogram::new("tensor.scope.queue_depth");

/// 0 = unread, 1 = enabled, 2 = disabled.
static COARSE: AtomicU8 = AtomicU8::new(0);

thread_local! {
    static SCOPE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// Whether coarse-grained scheduling is enabled (default: yes).
///
/// First read consults `CHIRON_COARSE` via
/// [`chiron_telemetry::RuntimeConfig::global`]; `0`/`false` disables all
/// `TaskScope` fan-outs, forcing the bitwise-identical serial fallback
/// while leaving fine-grained tensor parallelism untouched. Benches use
/// the disabled mode as the pre-scheduler baseline.
#[must_use]
pub fn coarse_enabled() -> bool {
    match COARSE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let on = chiron_telemetry::RuntimeConfig::global()
                .coarse
                .unwrap_or(true);
            COARSE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the coarse-scheduling flag at runtime (bench baselines,
/// determinism tests). Fine-grained pool regions are unaffected.
pub fn set_coarse(on: bool) {
    COARSE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Restores the previous scope depth even if the body panics.
struct DepthGuard(usize);

impl Drop for DepthGuard {
    fn drop(&mut self) {
        SCOPE_DEPTH.with(|d| d.set(self.0));
    }
}

/// A coarse-grained parallel region. Created by [`scope`]; fans tasks out
/// across the shared worker pool with problem-size-derived partitioning
/// (one block per task) and in-order result collection.
pub struct TaskScope {
    name: &'static str,
    depth: usize,
}

impl TaskScope {
    /// The name this scope was opened with (also the telemetry span name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nesting depth of this scope: 0 for a top-level region, 1 for a
    /// scope opened inside another scope's body on the same thread.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// True when fan-outs from this scope run on the inline serial path
    /// (coarse scheduling disabled, serial pool, or already on a worker).
    #[must_use]
    pub fn serial(&self) -> bool {
        !coarse_enabled() || pool::runs_inline(usize::MAX)
    }

    /// Runs `f(i, &items[i])` for every item and returns the results in
    /// ascending item order. Bitwise-identical to the serial loop at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f`.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        SCOPE_TASKS.add(items.len() as u64);
        if !coarse_enabled() || pool::runs_inline(items.len()) {
            SCOPE_INLINE.add(1);
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        SCOPE_QUEUE_DEPTH.record(items.len() as f64);
        // One unit block per task: partitioning depends on the item count
        // only, and results come back in block (= item) order.
        let mut unit: Vec<()> = vec![(); items.len()];
        pool::parallel_chunks_map(&mut unit, 1, |i, _| f(i, &items[i]))
    }

    /// Runs `f(i, &mut items[i])` for every item and returns the results
    /// in ascending item order. Each task owns its element exclusively —
    /// this is the entry point for `Send`-but-not-`Sync` work items such
    /// as cloned models.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f`.
    pub fn map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        SCOPE_TASKS.add(items.len() as u64);
        if !coarse_enabled() || pool::runs_inline(items.len()) {
            SCOPE_INLINE.add(1);
            return items.iter_mut().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        SCOPE_QUEUE_DEPTH.record(items.len() as f64);
        pool::parallel_chunks_map(items, 1, |i, chunk| f(i, &mut chunk[0]))
    }

    /// Runs a vector of heterogeneous one-shot tasks and returns their
    /// results in task order. Used when the tasks are not a uniform map
    /// over a slice (e.g. "train Chiron" / "train DRL" / "train Greedy").
    ///
    /// # Panics
    ///
    /// Propagates a panic from any task.
    pub fn run<'env, R: Send>(&self, tasks: Vec<Box<dyn FnOnce() -> R + Send + 'env>>) -> Vec<R> {
        SCOPE_TASKS.add(tasks.len() as u64);
        if !coarse_enabled() || pool::runs_inline(tasks.len()) {
            SCOPE_INLINE.add(1);
            return tasks.into_iter().map(|t| t()).collect();
        }
        SCOPE_QUEUE_DEPTH.record(tasks.len() as f64);
        let mut slots: Vec<Option<Box<dyn FnOnce() -> R + Send + 'env>>> =
            tasks.into_iter().map(Some).collect();
        pool::parallel_chunks_map(&mut slots, 1, |_, chunk| {
            (chunk[0].take().expect("each task slot is consumed once"))()
        })
    }
}

/// Opens a named coarse-grained region and passes a [`TaskScope`] to
/// `body`. The scope records a telemetry span (`name`, wall + thread-CPU
/// ns) around the body and tracks nesting depth per thread.
///
/// ```
/// let squares = chiron_tensor::scope::scope("example.squares", |s| {
///     s.map(&[1usize, 2, 3, 4], |_, &x| x * x)
/// });
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn scope<R>(name: &'static str, body: impl FnOnce(&TaskScope) -> R) -> R {
    SCOPE_REGIONS.add(1);
    let _span = chiron_telemetry::span(name);
    let depth = SCOPE_DEPTH.with(|d| {
        let prev = d.get();
        d.set(prev + 1);
        prev
    });
    let _guard = DepthGuard(depth);
    let s = TaskScope { name, depth };
    body(&s)
}

/// One-shot convenience: [`scope`] + [`TaskScope::map`] in a single call.
///
/// ```
/// let doubled =
///     chiron_tensor::scope::parallel_map_scoped("example.double", &[1.0f32, 2.0], |_, &x| x * 2.0);
/// assert_eq!(doubled, vec![2.0, 4.0]);
/// ```
pub fn parallel_map_scoped<T, R, F>(name: &'static str, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    scope(name, |s| s.map(items, f))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_loop() {
        let items: Vec<u64> = (0..37).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        let got = scope("test.map", |s| s.map(&items, |_, &x| x * 3 + 1));
        assert_eq!(got, expect);
    }

    #[test]
    fn map_mut_owns_each_element() {
        let mut items: Vec<Vec<u64>> = (0..9).map(|i| vec![i]).collect();
        let sums = scope("test.map_mut", |s| {
            s.map_mut(&mut items, |i, v| {
                v.push(i as u64 * 10);
                v.iter().sum::<u64>()
            })
        });
        assert_eq!(sums, vec![0, 11, 22, 33, 44, 55, 66, 77, 88]);
    }

    #[test]
    fn run_preserves_task_order() {
        let mut out = vec![0usize; 3];
        let (a, rest) = out.split_at_mut(1);
        let (b, c) = rest.split_at_mut(1);
        let results = scope("test.run", |s| {
            let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
                Box::new(|| {
                    a[0] = 10;
                    1
                }),
                Box::new(|| {
                    b[0] = 20;
                    2
                }),
                Box::new(|| {
                    c[0] = 30;
                    3
                }),
            ];
            s.run(tasks)
        });
        assert_eq!(results, vec![1, 2, 3]);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn depth_tracks_nesting_and_recovers() {
        scope("test.outer", |outer| {
            assert_eq!(outer.depth(), 0);
            scope("test.inner", |inner| {
                assert_eq!(inner.depth(), 1);
            });
            // Depth restored after the inner scope closes.
            scope("test.inner2", |inner| assert_eq!(inner.depth(), 1));
        });
        scope("test.after", |s| assert_eq!(s.depth(), 0));
    }

    #[test]
    fn disabled_coarse_scheduling_runs_inline_and_identical() {
        let items: Vec<u64> = (0..16).collect();
        let parallel = scope("test.coarse_on", |s| {
            s.map(&items, |i, &x| x * 7 + i as u64)
        });
        set_coarse(false);
        let serial = scope("test.coarse_off", |s| {
            s.map(&items, |i, &x| x * 7 + i as u64)
        });
        set_coarse(true);
        assert_eq!(parallel, serial);
    }
}
