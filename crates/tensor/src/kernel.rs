//! Cache-blocked, packed, register-tiled matmul kernel.
//!
//! All three matmul variants ([`Tensor::matmul`](crate::Tensor::matmul),
//! `matmul_tn`, `matmul_nt`) and the conv-backward products route through
//! [`matmul_views`], which dispatches on problem size:
//!
//! * **Direct path** (small products, e.g. the PPO MLP's `30×64·64×64`):
//!   the original unblocked row loops — no packing overhead.
//! * **Blocked path** (the conv-dominated im2col products): BLIS-style
//!   `jc → pc → ic` panel blocking with [`NC`]×[`KC`]×[`MC`] tiles, both
//!   operands packed into contiguous panels from the scratch arena, and an
//!   [`MR`]×[`NR`] register-tiled micro-kernel.
//!
//! # Canonical accumulation order
//!
//! Every path — direct, blocked, serial, pool-parallel, any operand layout
//! — computes each output element as **one** `f32` accumulator over `k`
//! **ascending**:
//!
//! ```text
//! c[i][j] = fold(k = 0..K) { acc = acc + a[i][k] * b[k][j] }
//! ```
//!
//! The micro-kernel keeps this exact order across cache blocking by
//! *loading the C tile into its accumulator registers* at the start of each
//! `KC` panel and storing it back after: partial sums materialize through C
//! memory between panels, and an `f32` store/load round-trip is
//! value-preserving, so splitting `k` into panels never reassociates the
//! fold. The direct path's zero-skip (`a[i][k] == 0.0` contributes
//! `acc + ±0.0·b`, which never changes a finite accumulator that started at
//! `+0.0`) and the packed path's zero padding are both identities on finite
//! data, so:
//!
//! * the blocked kernel equals the naive reference **bitwise** (the
//!   property tests assert exact equality on random shapes), and
//! * size-based dispatch between the two paths is numerically invisible.
//!
//! # Thread-count invariance
//!
//! The blocked path parallelizes over `MC`-row blocks of C inside each
//! `(jc, pc)` panel. The partition is derived from `m` alone (never the
//! thread count), each block writes a disjoint row range, and each element's
//! operation sequence is fixed by the loop structure — so output is bitwise
//! identical to serial at any `CHIRON_THREADS` (`tests/parallel_determinism`
//! proves it end to end). The B panel is packed once per `(jc, pc)` by the
//! calling thread; each row block packs its A panel into its own
//! thread-local scratch buffer.

use crate::scratch::ScratchBuf;
use crate::{pool, Tensor};

/// Rows of C per cache block (the `ic` loop step and the parallel grain).
pub const MC: usize = 64;
/// Depth of one packed panel (the `pc` loop step): A and B panels of this
/// depth stay L1/L2-resident under the micro-kernel.
pub const KC: usize = 256;
/// Columns of C per outer panel (the `jc` loop step).
pub const NC: usize = 512;
/// Micro-tile rows: 8 independent accumulator rows give the FPU enough
/// parallelism despite each element's strictly serial `k` chain.
pub const MR: usize = 8;
/// Micro-tile columns: one 4-wide f32 SIMD lane per accumulator row on the
/// baseline x86-64 target.
pub const NR: usize = 4;

/// Multiply-add count below which the packed path's setup (panel packing,
/// C-tile staging) costs more than it saves. The PPO-sized products
/// (`30·64·64 ≈ 1.2×10⁵`) stay direct; every conv im2col product of the
/// paper's CNNs (≥ 1.4×10⁶) goes blocked. Dispatch is by shape only, so a
/// given product always takes the same path at every thread count — and the
/// two paths agree bitwise anyway (see module docs).
const BLOCKED_FLOP_THRESHOLD: usize = 1 << 18;

/// Output rows per parallel block on the *direct* path. Fixed by the
/// problem size (never the thread count) so the partitioning — and
/// therefore every per-element accumulation order — is identical for every
/// thread count.
const ROWS_PER_BLOCK: usize = 16;

/// Below this many multiply-adds the direct path runs serially; the pool
/// fan-out overhead beats the win. A performance gate only: each output
/// element is computed with the same operation sequence on either path.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 16;

/// A borrowed matrix operand: flat data plus a logical `rows × cols` layout
/// that the kernel's packing routines absorb, so transposes (and the conv
/// backward's NCHW gradient) never materialize.
#[derive(Clone, Copy)]
pub struct MatView<'a> {
    data: &'a [f32],
    layout: Layout,
}

#[derive(Clone, Copy)]
enum Layout {
    /// `rows × cols`, row-major: `(r, c) → data[r·cols + c]`.
    RowMajor { rows: usize, cols: usize },
    /// Logical `rows × cols` over data stored row-major as `cols × rows`
    /// (a transpose view): `(r, c) → data[c·rows + r]`.
    ColMajor { rows: usize, cols: usize },
    /// Logical `(batch·positions) × channels` over NCHW-flattened data —
    /// the conv layer's `(N, C, P)` gradient read as the `(N·P, C)` matrix
    /// its backward products need, without the transpose copy:
    /// `(b·positions + pos, ch) → data[b·channels·positions + ch·positions + pos]`.
    BatchCol {
        batch: usize,
        channels: usize,
        positions: usize,
    },
}

impl<'a> MatView<'a> {
    /// Row-major `rows × cols` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn row_major(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatView: data/shape mismatch");
        Self {
            data,
            layout: Layout::RowMajor { rows, cols },
        }
    }

    /// Transpose view: `data` is stored row-major as `cols × rows`; the
    /// view presents the logical `rows × cols` transpose.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn transposed(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatView: data/shape mismatch");
        Self {
            data,
            layout: Layout::ColMajor { rows, cols },
        }
    }

    /// `(batch·positions) × channels` view over `(batch, channels,
    /// positions)` NCHW-flattened data (see the private `Layout::BatchCol`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != batch * channels * positions`.
    pub fn batch_transposed(
        data: &'a [f32],
        batch: usize,
        channels: usize,
        positions: usize,
    ) -> Self {
        assert_eq!(
            data.len(),
            batch * channels * positions,
            "MatView: data/shape mismatch"
        );
        Self {
            data,
            layout: Layout::BatchCol {
                batch,
                channels,
                positions,
            },
        }
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        match self.layout {
            Layout::RowMajor { rows, .. } | Layout::ColMajor { rows, .. } => rows,
            Layout::BatchCol {
                batch, positions, ..
            } => batch * positions,
        }
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        match self.layout {
            Layout::RowMajor { cols, .. } | Layout::ColMajor { cols, .. } => cols,
            Layout::BatchCol { channels, .. } => channels,
        }
    }

    /// Element at logical `(r, c)`.
    #[inline]
    fn get(&self, r: usize, c: usize) -> f32 {
        match self.layout {
            Layout::RowMajor { cols, .. } => self.data[r * cols + c],
            Layout::ColMajor { rows, .. } => self.data[c * rows + r],
            Layout::BatchCol {
                channels,
                positions,
                ..
            } => {
                let b = r / positions;
                let pos = r % positions;
                self.data[(b * channels + c) * positions + pos]
            }
        }
    }
}

/// `a (m×k) · b (k×n)` into a fresh arena-backed tensor.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul_views(a: &MatView<'_>, b: &MatView<'_>) -> Tensor {
    let (m, n) = (a.rows(), b.cols());
    let mut out = crate::scratch::take_vec(m * n);
    matmul_into(a, b, &mut out);
    Tensor::from_vec(out, &[m, n])
}

/// `a (m×k) · b (k×n)` accumulated into `out` (which must be zeroed, length
/// `m·n`, row-major).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `out` has the wrong length.
pub fn matmul_into(a: &MatView<'_>, b: &MatView<'_>, out: &mut [f32]) {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul: inner dims mismatch ({m}x{k}) · ({k2}x{n})");
    assert_eq!(out.len(), m * n, "matmul: output length mismatch");
    // Telemetry (observational only; no effect on the computation): count
    // FLOPs always-cheaply, and time the kernel for a GFLOP/s histogram
    // only when the layer is enabled.
    static KERNEL_CALLS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.calls");
    static KERNEL_FLOPS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.flops");
    static KERNEL_GFLOPS: chiron_telemetry::Histogram =
        chiron_telemetry::Histogram::new("tensor.kernel.gflops");
    let flops = 2 * m * k * n;
    let start = chiron_telemetry::enabled().then(std::time::Instant::now);
    if m * k * n >= BLOCKED_FLOP_THRESHOLD {
        blocked(a, b, m, k, n, out);
    } else {
        direct(a, b, m, k, n, out);
    }
    if let Some(t0) = start {
        KERNEL_CALLS.add(1);
        KERNEL_FLOPS.add(flops as u64);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            KERNEL_GFLOPS.record(flops as f64 / secs / 1e9);
        }
    }
}

// ---------------------------------------------------------------------------
// Direct path: the original unblocked loops, for small products.
// ---------------------------------------------------------------------------

/// One output row with a row-major `b`: `o_row += a[i][·] · b` in ikj order
/// with the zero-skip. Shared by the serial and parallel paths so they are
/// bitwise identical by construction.
#[inline]
fn direct_row_b_rowmajor(
    a: &MatView<'_>,
    i: usize,
    b: &[f32],
    k: usize,
    n: usize,
    o_row: &mut [f32],
) {
    for kk in 0..k {
        let aik = a.get(i, kk);
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bkj) in o_row.iter_mut().zip(b_row) {
            *o += aik * bkj;
        }
    }
}

/// One output row with a column-major `b` (the `nt` case): independent dot
/// products over `b`'s contiguous columns. A row-major `a` row is sliced
/// once so the dot is a plain two-slice zip the compiler can vectorize;
/// both branches fold in ascending `k`, so they are bitwise identical.
#[inline]
fn direct_row_b_colmajor(a: &MatView<'_>, i: usize, b: &[f32], k: usize, o_row: &mut [f32]) {
    if let Layout::RowMajor { cols, .. } = a.layout {
        let a_row = &a.data[i * cols..i * cols + k];
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_col = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&aik, &bkj) in a_row.iter().zip(b_col) {
                acc += aik * bkj;
            }
            *o = acc;
        }
    } else {
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_col = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (kk, &bkj) in b_col.iter().enumerate() {
                acc += a.get(i, kk) * bkj;
            }
            *o = acc;
        }
    }
}

/// One output row for any layout pair, via `get` (only reached by the
/// BatchCol-B combinations, which the conv backward keeps above the blocked
/// threshold except in small tests).
#[inline]
fn direct_row_generic(a: &MatView<'_>, b: &MatView<'_>, i: usize, k: usize, o_row: &mut [f32]) {
    for kk in 0..k {
        let aik = a.get(i, kk);
        if aik == 0.0 {
            continue;
        }
        for (j, o) in o_row.iter_mut().enumerate() {
            *o += aik * b.get(kk, j);
        }
    }
}

fn direct(a: &MatView<'_>, b: &MatView<'_>, m: usize, k: usize, n: usize, out: &mut [f32]) {
    let per_row = |i: usize, o_row: &mut [f32]| match b.layout {
        Layout::RowMajor { .. } => direct_row_b_rowmajor(a, i, b.data, k, n, o_row),
        Layout::ColMajor { .. } => direct_row_b_colmajor(a, i, b.data, k, o_row),
        Layout::BatchCol { .. } => direct_row_generic(a, b, i, k, o_row),
    };
    if m * k * n >= PARALLEL_FLOP_THRESHOLD && m > ROWS_PER_BLOCK && pool::threads() > 1 {
        pool::parallel_chunks_mut(out, ROWS_PER_BLOCK * n, |block, o_chunk| {
            let row0 = block * ROWS_PER_BLOCK;
            for (r, o_row) in o_chunk.chunks_mut(n).enumerate() {
                per_row(row0 + r, o_row);
            }
        });
    } else {
        for (i, o_row) in out.chunks_mut(n).enumerate() {
            per_row(i, o_row);
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: pack + register-tiled micro-kernel.
// ---------------------------------------------------------------------------

/// The register tile: MR×NR accumulators, each following its element's
/// canonical ascending-`k` chain. `ap` is an MR-interleaved A strip
/// (`ap[kk·MR + r]`), `bp` an NR-interleaved B strip (`bp[kk·NR + j]`).
/// The accumulators enter holding the current C tile and leave holding the
/// tile advanced by `kc` terms — the C round-trip that keeps panel blocking
/// bitwise-transparent.
#[inline]
fn micro_kernel(kc: usize, ap: &[f32], bp: &[f32], acc: &mut [[f32; NR]; MR]) {
    for kk in 0..kc {
        let b_strip = &bp[kk * NR..kk * NR + NR];
        let bj: [f32; NR] = [b_strip[0], b_strip[1], b_strip[2], b_strip[3]];
        let a_strip = &ap[kk * MR..kk * MR + MR];
        for r in 0..MR {
            let ar = a_strip[r];
            for (aj, &bv) in acc[r].iter_mut().zip(&bj) {
                *aj += ar * bv;
            }
        }
    }
}

/// Packs rows `i0..i0+mc`, depth `pc..pc+kc` of `a` into MR-row strips,
/// `kk`-major within each strip: `dst[strip·kc·MR + kk·MR + r]`. `dst` is
/// pre-zeroed, so rows past `mc` stay zero-padded.
fn pack_a(a: &MatView<'_>, i0: usize, mc: usize, pc: usize, kc: usize, dst: &mut [f32]) {
    match a.layout {
        Layout::RowMajor { cols, .. } => {
            for t in 0..mc.div_ceil(MR) {
                let strip = &mut dst[t * kc * MR..(t + 1) * kc * MR];
                for r in 0..MR.min(mc - t * MR) {
                    let row = &a.data[(i0 + t * MR + r) * cols + pc..][..kc];
                    for (kk, &v) in row.iter().enumerate() {
                        strip[kk * MR + r] = v;
                    }
                }
            }
        }
        Layout::ColMajor { rows, .. } => {
            // Columns of the stored matrix are contiguous runs of logical
            // rows: copy each depth's `mc`-long segment, scattering by MR.
            for kk in 0..kc {
                let col = &a.data[(pc + kk) * rows + i0..][..mc];
                for (ri, &v) in col.iter().enumerate() {
                    dst[(ri / MR) * kc * MR + kk * MR + (ri % MR)] = v;
                }
            }
        }
        Layout::BatchCol { .. } => {
            for t in 0..mc.div_ceil(MR) {
                let strip = &mut dst[t * kc * MR..(t + 1) * kc * MR];
                for r in 0..MR.min(mc - t * MR) {
                    let row = i0 + t * MR + r;
                    for kk in 0..kc {
                        strip[kk * MR + r] = a.get(row, pc + kk);
                    }
                }
            }
        }
    }
}

/// Packs depth `pc..pc+kc`, columns `jc..jc+nc` of `b` into NR-column
/// strips, `kk`-major within each strip: `dst[strip·kc·NR + kk·NR + j]`.
/// `dst` is pre-zeroed, so columns past `nc` stay zero-padded.
fn pack_b(b: &MatView<'_>, pc: usize, kc: usize, jc: usize, nc: usize, dst: &mut [f32]) {
    match b.layout {
        Layout::RowMajor { cols, .. } => {
            for kk in 0..kc {
                let row = &b.data[(pc + kk) * cols + jc..][..nc];
                for (ji, &v) in row.iter().enumerate() {
                    dst[(ji / NR) * kc * NR + kk * NR + (ji % NR)] = v;
                }
            }
        }
        Layout::ColMajor { rows, .. } => {
            for s in 0..nc.div_ceil(NR) {
                let strip = &mut dst[s * kc * NR..(s + 1) * kc * NR];
                for j in 0..NR.min(nc - s * NR) {
                    let col = &b.data[(jc + s * NR + j) * rows + pc..][..kc];
                    for (kk, &v) in col.iter().enumerate() {
                        strip[kk * NR + j] = v;
                    }
                }
            }
        }
        Layout::BatchCol { .. } => {
            for s in 0..nc.div_ceil(NR) {
                let strip = &mut dst[s * kc * NR..(s + 1) * kc * NR];
                for j in 0..NR.min(nc - s * NR) {
                    let col = jc + s * NR + j;
                    for kk in 0..kc {
                        strip[kk * NR + j] = b.get(pc + kk, col);
                    }
                }
            }
        }
    }
}

/// Runs the packed panel loops for one MC-row block of C. `out_rows` is the
/// block's row range of the full output (row-major, all `n` columns); `bp`
/// is the packed B panel for `(jc, pc)`.
#[allow(clippy::too_many_arguments)]
fn row_block(
    a: &MatView<'_>,
    bp: &[f32],
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    n: usize,
    out_rows: &mut [f32],
) {
    let mut ap = ScratchBuf::zeroed(mc.div_ceil(MR) * kc * MR);
    pack_a(a, i0, mc, pc, kc, &mut ap);
    for s in 0..nc.div_ceil(NR) {
        let j0 = jc + s * NR;
        let jn = NR.min(nc - s * NR);
        let b_strip = &bp[s * kc * NR..(s + 1) * kc * NR];
        for t in 0..mc.div_ceil(MR) {
            let r0 = t * MR;
            let rm = MR.min(mc - r0);
            let a_strip = &ap[t * kc * MR..(t + 1) * kc * MR];
            let mut acc = [[0.0f32; NR]; MR];
            for (r, row) in acc.iter_mut().enumerate().take(rm) {
                for (j, v) in row.iter_mut().enumerate().take(jn) {
                    *v = out_rows[(r0 + r) * n + j0 + j];
                }
            }
            micro_kernel(kc, a_strip, b_strip, &mut acc);
            for (r, row) in acc.iter().enumerate().take(rm) {
                for (j, &v) in row.iter().enumerate().take(jn) {
                    out_rows[(r0 + r) * n + j0 + j] = v;
                }
            }
        }
    }
}

fn blocked(a: &MatView<'_>, b: &MatView<'_>, m: usize, k: usize, n: usize, out: &mut [f32]) {
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            // One packed B panel per (jc, pc), shared read-only by every
            // row block; padding stays zero from the arena's zero-fill.
            let mut bp = ScratchBuf::zeroed(nc.div_ceil(NR) * kc * NR);
            pack_b(b, pc, kc, jc, nc, &mut bp);
            let blocks = m.div_ceil(MC);
            if blocks > 1 && pool::threads() > 1 {
                pool::parallel_chunks_mut(out, MC * n, |blk, rows| {
                    let i0 = blk * MC;
                    row_block(a, &bp, i0, rows.len() / n, pc, kc, jc, nc, n, rows);
                });
            } else {
                for (blk, rows) in out.chunks_mut(MC * n).enumerate() {
                    let i0 = blk * MC;
                    row_block(a, &bp, i0, rows.len() / n, pc, kc, jc, nc, n, rows);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, TensorRng};

    /// The naive reference: one accumulator per element, `k` ascending, no
    /// skips — the canonical order every kernel path must match bitwise.
    fn reference(a: &MatView<'_>, b: &MatView<'_>) -> Vec<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn blocked_path_matches_reference_exactly() {
        let mut rng = TensorRng::seed_from(99);
        // Non-divisible by MR/NR/MC/KC on purpose.
        let (m, k, n) = (131, 67, 29);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let av = MatView::row_major(a.as_slice(), m, k);
        let bv = MatView::row_major(b.as_slice(), k, n);
        let mut out = vec![0.0f32; m * n];
        blocked(&av, &bv, m, k, n, &mut out);
        assert_eq!(out, reference(&av, &bv));
    }

    #[test]
    fn batch_col_view_reads_nchw_as_np_by_c() {
        // (batch=2, channels=3, positions=2) NCHW data.
        let data: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let v = MatView::batch_transposed(&data, 2, 3, 2);
        assert_eq!((v.rows(), v.cols()), (4, 3));
        // Row (b=0, pos=1), channel 2 → data[0·6 + 2·2 + 1] = 5.
        assert_eq!(v.get(1, 2), 5.0);
        // Row (b=1, pos=0), channel 1 → data[6 + 2 + 0] = 8.
        assert_eq!(v.get(2, 1), 8.0);
    }

    #[test]
    fn micro_kernel_resumes_from_c_tile() {
        // Two KC half-panels must equal one full pass bitwise.
        let kc = 10;
        let ap: Vec<f32> = (0..kc * MR).map(|x| (x as f32 * 0.37).sin()).collect();
        let bp: Vec<f32> = (0..kc * NR).map(|x| (x as f32 * 0.61).cos()).collect();
        let mut full = [[0.0f32; NR]; MR];
        micro_kernel(kc, &ap, &bp, &mut full);
        let mut halves = [[0.0f32; NR]; MR];
        micro_kernel(5, &ap[..5 * MR], &bp[..5 * NR], &mut halves);
        micro_kernel(5, &ap[5 * MR..], &bp[5 * NR..], &mut halves);
        assert_eq!(full, halves);
    }
}
