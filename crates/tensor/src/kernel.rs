//! Cache-blocked, packed, register-tiled matmul kernel with runtime SIMD
//! dispatch and per-shape autotuned blocking.
//!
//! All three matmul variants ([`Tensor::matmul`](crate::Tensor::matmul),
//! `matmul_tn`, `matmul_nt`) and the conv-backward products route through
//! [`matmul_views`], which dispatches on problem size:
//!
//! * **Direct path** (small products, e.g. the PPO MLP's `30×64·64×64`):
//!   the original unblocked row loops — no packing overhead, always scalar.
//! * **Blocked path** (the conv-dominated im2col products): BLIS-style
//!   `jc → pc → ic` panel blocking, both operands packed into contiguous
//!   panels from the scratch arena, and a register-tiled micro-kernel.
//!
//! On the blocked path two further decisions are made per call, neither of
//! which affects a single output bit (see below):
//!
//! * **Dispatch tier** ([`simd::active_tier`]): AVX2 on capable x86-64,
//!   NEON on aarch64, scalar elsewhere — or pinned to scalar with
//!   `CHIRON_SIMD=0`. The vector micro-kernels lay lanes along `n` and use
//!   unfused multiply-then-add, so every tier executes each element's
//!   canonical fold exactly.
//! * **Blocking parameters** ([`tune::params_for`]): the `mc`/`kc`/`nc`
//!   panel sizes and the register micro-tile, resolved from the per-shape
//!   autotune profile cache (measured once per shape when `CHIRON_AUTOTUNE`
//!   is on, deterministic heuristic otherwise). The scalar tier always uses
//!   the pinned [`MC`]/[`KC`]/[`NC`] + [`MR`]×[`NR`] configuration — the
//!   byte-stable reference.
//!
//! # Canonical accumulation order
//!
//! Every path — direct, blocked, serial, pool-parallel, any operand layout,
//! any dispatch tier, any blocking parameters — computes each output
//! element as **one** `f32` accumulator over `k` **ascending**, with an
//! unfused multiply then add per term:
//!
//! ```text
//! c[i][j] = fold(k = 0..K) { acc = acc + a[i][k] * b[k][j] }
//! ```
//!
//! The micro-kernel keeps this exact order across cache blocking by
//! *loading the C tile into its accumulators* at the start of each
//! `kc` panel and storing it back after: partial sums materialize through C
//! memory between panels, and an `f32` store/load round-trip is
//! value-preserving, so splitting `k` into panels never reassociates the
//! fold — for **any** `kc`. Micro-tile and `mc`/`nc` choices only regroup
//! which elements advance together, never an element's own op sequence; the
//! SIMD tiers advance several elements per instruction with one lane per
//! element and no horizontal reduction (see [`simd`]). The direct path's
//! zero-skip (`a[i][k] == 0.0` contributes `acc + ±0.0·b`, which never
//! changes a finite accumulator that started at `+0.0`) and the packed
//! path's zero padding are both identities on finite data, so:
//!
//! * the blocked kernel equals the naive reference **bitwise** on every
//!   tier and parameter choice (the property tests assert exact equality
//!   on random shapes, and `tests/simd.rs` crosses tiers), and
//! * size-based dispatch between the two paths is numerically invisible.
//!
//! # Thread-count invariance
//!
//! The blocked path parallelizes over `mc`-row blocks of C inside each
//! `(jc, pc)` panel. The partition is derived from `m` and the per-shape
//! blocking parameters (never the thread count), each block writes a
//! disjoint row range, and each element's operation sequence is fixed by
//! the loop structure — so output is bitwise identical to serial at any
//! `CHIRON_THREADS` (`tests/parallel_determinism` proves it end to end).
//! The B panel is packed once per `(jc, pc)` by the calling thread; each
//! row block packs its A panel into its own thread-local scratch buffer.

pub mod pack_cache;
pub mod simd;
pub mod tune;

use crate::scratch::ScratchBuf;
use crate::{pool, Tensor};
use simd::{DispatchTier, MicroTile};
use std::rc::Rc;
use tune::KernelParams;

/// Rows of C per cache block on the pinned scalar tier (the `ic` loop step
/// and the parallel grain); vector tiers may autotune a different value.
pub const MC: usize = 64;
/// Depth of one packed panel (the `pc` loop step): A and B panels of this
/// depth stay L1/L2-resident under the micro-kernel.
pub const KC: usize = 256;
/// Columns of C per outer panel (the `jc` loop step).
pub const NC: usize = 512;
/// Pinned scalar micro-tile rows: 8 independent accumulator rows give the
/// FPU enough parallelism despite each element's strictly serial `k` chain.
pub const MR: usize = 8;
/// Pinned scalar micro-tile columns. Vector tiers widen this to one or two
/// hardware lanes (see [`simd::MicroTile`]).
pub const NR: usize = 4;

/// Multiply-add count below which the packed path's setup (panel packing,
/// C-tile staging) costs more than it saves. The PPO-sized products
/// (`30·64·64 ≈ 1.2×10⁵`) stay direct; every conv im2col product of the
/// paper's CNNs (≥ 1.4×10⁶) goes blocked. Dispatch is by shape only, so a
/// given product always takes the same path at every thread count — and the
/// two paths agree bitwise anyway (see module docs).
const BLOCKED_FLOP_THRESHOLD: usize = 1 << 18;

/// Output rows per parallel block on the *direct* path. Fixed by the
/// problem size (never the thread count) so the partitioning — and
/// therefore every per-element accumulation order — is identical for every
/// thread count.
const ROWS_PER_BLOCK: usize = 16;

/// Below this many multiply-adds the direct path runs serially; the pool
/// fan-out overhead beats the win. A performance gate only: each output
/// element is computed with the same operation sequence on either path.
const PARALLEL_FLOP_THRESHOLD: usize = 1 << 16;

/// A borrowed matrix operand: flat data plus a logical `rows × cols` layout
/// that the kernel's packing routines absorb, so transposes (and the conv
/// backward's NCHW gradient) never materialize.
#[derive(Clone, Copy)]
pub struct MatView<'a> {
    data: &'a [f32],
    layout: Layout,
    /// Content identity for the packed-operand cache (see
    /// [`MatView::keyed`]); `None` means "never cache this operand".
    key: Option<(u64, u64)>,
}

#[derive(Clone, Copy)]
enum Layout {
    /// `rows × cols`, row-major: `(r, c) → data[r·cols + c]`.
    RowMajor { rows: usize, cols: usize },
    /// Logical `rows × cols` over data stored row-major as `cols × rows`
    /// (a transpose view): `(r, c) → data[c·rows + r]`.
    ColMajor { rows: usize, cols: usize },
    /// Logical `(batch·positions) × channels` over NCHW-flattened data —
    /// the conv layer's `(N, C, P)` gradient read as the `(N·P, C)` matrix
    /// its backward products need, without the transpose copy:
    /// `(b·positions + pos, ch) → data[b·channels·positions + ch·positions + pos]`.
    BatchCol {
        batch: usize,
        channels: usize,
        positions: usize,
    },
}

impl<'a> MatView<'a> {
    /// Row-major `rows × cols` view.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn row_major(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatView: data/shape mismatch");
        Self {
            data,
            layout: Layout::RowMajor { rows, cols },
            key: None,
        }
    }

    /// Transpose view: `data` is stored row-major as `cols × rows`; the
    /// view presents the logical `rows × cols` transpose.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn transposed(data: &'a [f32], rows: usize, cols: usize) -> Self {
        assert_eq!(data.len(), rows * cols, "MatView: data/shape mismatch");
        Self {
            data,
            layout: Layout::ColMajor { rows, cols },
            key: None,
        }
    }

    /// `(batch·positions) × channels` view over `(batch, channels,
    /// positions)` NCHW-flattened data (see the private `Layout::BatchCol`).
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != batch * channels * positions`.
    pub fn batch_transposed(
        data: &'a [f32],
        batch: usize,
        channels: usize,
        positions: usize,
    ) -> Self {
        assert_eq!(
            data.len(),
            batch * channels * positions,
            "MatView: data/shape mismatch"
        );
        Self {
            data,
            layout: Layout::BatchCol {
                batch,
                channels,
                positions,
            },
            key: None,
        }
    }

    /// Attaches a [`Tensor::pack_key`](crate::Tensor::pack_key) content
    /// identity, allowing the blocked kernel to reuse this operand's packed
    /// panels across calls (see [`pack_cache`]). The caller asserts that
    /// `key` identifies exactly these bytes — the `Tensor` version counter
    /// upholds that for any live tensor. Unkeyed views are never cached.
    #[must_use]
    pub fn keyed(mut self, key: (u64, u64)) -> Self {
        self.key = Some(key);
        self
    }

    /// Strips the cache identity (autotune trial runs pack with throwaway
    /// geometries that must not be admitted).
    pub(crate) fn without_key(mut self) -> Self {
        self.key = None;
        self
    }

    /// Logical row count.
    pub fn rows(&self) -> usize {
        match self.layout {
            Layout::RowMajor { rows, .. } | Layout::ColMajor { rows, .. } => rows,
            Layout::BatchCol {
                batch, positions, ..
            } => batch * positions,
        }
    }

    /// Logical column count.
    pub fn cols(&self) -> usize {
        match self.layout {
            Layout::RowMajor { cols, .. } | Layout::ColMajor { cols, .. } => cols,
            Layout::BatchCol { channels, .. } => channels,
        }
    }

    /// Stable layout tag for autotune-profile keying (see
    /// [`tune::ShapeKey`]).
    fn layout_tag(&self) -> u8 {
        match self.layout {
            Layout::RowMajor { .. } => 0,
            Layout::ColMajor { .. } => 1,
            Layout::BatchCol { .. } => 2,
        }
    }

    /// Element at logical `(r, c)`.
    #[inline]
    fn get(&self, r: usize, c: usize) -> f32 {
        match self.layout {
            Layout::RowMajor { cols, .. } => self.data[r * cols + c],
            Layout::ColMajor { rows, .. } => self.data[c * rows + r],
            Layout::BatchCol {
                channels,
                positions,
                ..
            } => {
                let b = r / positions;
                let pos = r % positions;
                self.data[(b * channels + c) * positions + pos]
            }
        }
    }
}

/// An elementwise finisher fused into the GEMM's output pass, applied to
/// each output element exactly once, after its full-`k` accumulation.
///
/// # Bitwise equivalence to the unfused pipeline
///
/// The unfused pipeline computes `matmul` → `add_row_broadcast` (per
/// element: `out += bias[j]`) → ReLU (per element: `out = out.max(0.0)`).
/// The fused epilogue runs the **same operations in the same per-element
/// order** — the only change is *when*: per output tile right after the
/// last `kc` panel stored the finished accumulator, instead of in separate
/// whole-matrix passes. Elementwise ops don't interact across elements, so
/// the result is bitwise identical, including NaN payloads (`f32::max`
/// returns `0.0` for `NaN.max(0.0)` on both paths) and subnormals.
#[derive(Clone, Copy)]
pub enum Epilogue<'a> {
    /// Plain GEMM, no finisher.
    None,
    /// `out[i][j] += bias[j]` (length-`n` bias).
    Bias(&'a [f32]),
    /// `out[i][j] = (out[i][j] + bias[j]).max(0.0)`.
    BiasRelu(&'a [f32]),
    /// `out[i][j] = out[i][j].max(0.0)`.
    Relu,
}

impl Epilogue<'_> {
    /// Applies the finisher to one contiguous row segment whose first
    /// element is output column `j0`.
    #[inline]
    fn apply(&self, seg: &mut [f32], j0: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::Bias(bias) => {
                let bias = &bias[j0..j0 + seg.len()];
                for (o, &b) in seg.iter_mut().zip(bias) {
                    *o += b;
                }
            }
            Epilogue::BiasRelu(bias) => {
                let bias = &bias[j0..j0 + seg.len()];
                for (o, &b) in seg.iter_mut().zip(bias) {
                    *o = (*o + b).max(0.0);
                }
            }
            Epilogue::Relu => {
                for o in seg.iter_mut() {
                    *o = o.max(0.0);
                }
            }
        }
    }

    fn is_none(&self) -> bool {
        matches!(self, Epilogue::None)
    }

    fn assert_bias_len(&self, n: usize) {
        if let Epilogue::Bias(bias) | Epilogue::BiasRelu(bias) = self {
            assert_eq!(bias.len(), n, "epilogue bias length must equal n");
        }
    }
}

/// `a (m×k) · b (k×n)` into a fresh arena-backed tensor.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn matmul_views(a: &MatView<'_>, b: &MatView<'_>) -> Tensor {
    matmul_views_ep(a, b, Epilogue::None)
}

/// [`matmul_views`] with a fused [`Epilogue`] finisher.
///
/// # Panics
///
/// Panics if the inner dimensions disagree or an epilogue bias length
/// differs from `n`.
pub fn matmul_views_ep(a: &MatView<'_>, b: &MatView<'_>, ep: Epilogue<'_>) -> Tensor {
    let (m, n) = (a.rows(), b.cols());
    let mut out = crate::scratch::take_vec(m * n);
    matmul_into_ep(a, b, &mut out, ep);
    Tensor::from_vec(out, &[m, n])
}

/// `a (m×k) · b (k×n)` accumulated into `out` (which must be zeroed, length
/// `m·n`, row-major).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `out` has the wrong length.
pub fn matmul_into(a: &MatView<'_>, b: &MatView<'_>, out: &mut [f32]) {
    matmul_into_ep(a, b, out, Epilogue::None);
}

/// [`matmul_into`] with a fused [`Epilogue`] finisher applied to each
/// output element once, after its full-`k` accumulation.
///
/// # Panics
///
/// Panics if the inner dimensions disagree, `out` has the wrong length, or
/// an epilogue bias length differs from `n`.
pub fn matmul_into_ep(a: &MatView<'_>, b: &MatView<'_>, out: &mut [f32], ep: Epilogue<'_>) {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul: inner dims mismatch ({m}x{k}) · ({k2}x{n})");
    assert_eq!(out.len(), m * n, "matmul: output length mismatch");
    ep.assert_bias_len(n);
    // Telemetry (observational only; no effect on the computation): count
    // calls/FLOPs and the dispatch tier always-cheaply, and time the kernel
    // for a GFLOP/s histogram only when the layer is enabled — the
    // `Histogram::enabled` gate skips both clock reads on the disabled hot
    // path.
    static KERNEL_CALLS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.calls");
    static KERNEL_FLOPS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.flops");
    static KERNEL_GFLOPS: chiron_telemetry::Histogram =
        chiron_telemetry::Histogram::new("tensor.kernel.gflops");
    static DISPATCH_SCALAR: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.dispatch.scalar");
    static DISPATCH_AVX2: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.dispatch.avx2");
    static DISPATCH_NEON: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.dispatch.neon");
    let flops = 2 * m * k * n;
    let start = KERNEL_GFLOPS.enabled().then(std::time::Instant::now);
    if m * k * n >= BLOCKED_FLOP_THRESHOLD {
        let tier = simd::active_tier();
        match tier {
            DispatchTier::Scalar => &DISPATCH_SCALAR,
            DispatchTier::Avx2 => &DISPATCH_AVX2,
            DispatchTier::Neon => &DISPATCH_NEON,
        }
        .add(1);
        let key = tune::ShapeKey {
            m,
            k,
            n,
            layout_a: a.layout_tag(),
            layout_b: b.layout_tag(),
        };
        let params = tune::params_for(tier, key, a, b);
        blocked(a, b, m, k, n, out, tier, params, ep);
    } else {
        direct(a, b, m, k, n, out, ep);
    }
    if let Some(t0) = start {
        KERNEL_CALLS.add(1);
        KERNEL_FLOPS.add(flops as u64);
        let secs = t0.elapsed().as_secs_f64();
        if secs > 0.0 {
            KERNEL_GFLOPS.record(flops as f64 / secs / 1e9);
        }
    }
}

/// Explicit-tier, explicit-parameters variant of [`matmul_into`]:
/// verification and benchmark hook. Same size-based path dispatch, but no
/// telemetry and no autotuner — the given tier and blocking are used as-is
/// on the blocked path (the direct path is always scalar). Bitwise-equal to
/// [`matmul_into`] for every tier/parameter choice (module docs).
///
/// # Panics
///
/// Panics if the inner dimensions disagree or `out` has the wrong length.
pub fn matmul_into_with(
    a: &MatView<'_>,
    b: &MatView<'_>,
    out: &mut [f32],
    tier: DispatchTier,
    params: KernelParams,
) {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul: inner dims mismatch ({m}x{k}) · ({k2}x{n})");
    assert_eq!(out.len(), m * n, "matmul: output length mismatch");
    if m * k * n >= BLOCKED_FLOP_THRESHOLD {
        blocked(a, b, m, k, n, out, tier, params, Epilogue::None);
    } else {
        direct(a, b, m, k, n, out, Epilogue::None);
    }
}

/// Runs `a[i] (m×k) · b (k×n)` for every instance `i` through **one**
/// blocked pass: the packed B panels (and the packed-operand cache entry,
/// when `b` is [`keyed`](MatView::keyed)) are shared across all instances,
/// and the pool parallelizes over instances instead of row blocks.
///
/// Every instance must have the same logical shape and layout as `a[0]`.
/// The per-element arithmetic is exactly what `matmul_into_ep(a[i], b,
/// outs[i], ep)` performs — dispatch (direct vs blocked) is decided by the
/// shared per-instance `m·k·n`, the blocking parameters come from the same
/// per-shape autotune profile, and `row_block` fixes each element's
/// operation sequence independent of scheduling — so the batched entry
/// point is bitwise identical to the per-call loop at every thread count.
///
/// # Panics
///
/// Panics if `a` and `outs` lengths differ, any instance's shape or layout
/// disagrees with the first, the inner dimensions disagree, an output
/// slice has the wrong length, or an epilogue bias length differs from
/// `n`.
pub fn matmul_batched_into(
    a: &[MatView<'_>],
    b: &MatView<'_>,
    outs: &mut [&mut [f32]],
    ep: Epilogue<'_>,
) {
    assert_eq!(
        a.len(),
        outs.len(),
        "matmul_batched: instance count mismatch"
    );
    if a.is_empty() {
        return;
    }
    let (m, k) = (a[0].rows(), a[0].cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul: inner dims mismatch ({m}x{k}) · ({k2}x{n})");
    ep.assert_bias_len(n);
    for (i, av) in a.iter().enumerate() {
        assert_eq!(
            (av.rows(), av.cols(), av.layout_tag()),
            (m, k, a[0].layout_tag()),
            "matmul_batched: instance {i} shape/layout mismatch"
        );
    }
    for (i, o) in outs.iter().enumerate() {
        assert_eq!(o.len(), m * n, "matmul_batched: output {i} length mismatch");
    }
    static BATCHED_CALLS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.batched.calls");
    static BATCHED_INSTANCES: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.batched.instances");
    BATCHED_CALLS.add(1);
    BATCHED_INSTANCES.add(a.len() as u64);
    if m * k * n < BLOCKED_FLOP_THRESHOLD {
        // Small instances: each runs the scalar direct path; the pool
        // fans out whole instances (nested row-parallelism runs inline).
        pool::parallel_chunks_mut(outs, 1, |i, chunk| {
            direct(&a[i], b, m, k, n, &mut *chunk[0], ep);
        });
        return;
    }
    let tier = simd::active_tier();
    let key = tune::ShapeKey {
        m,
        k,
        n,
        layout_a: a[0].layout_tag(),
        layout_b: b.layout_tag(),
    };
    let params = tune::params_for(tier, key, &a[0], b);
    let (mc_p, kc_p, nc_p) = (params.mc, params.kc, params.nc);
    let nr = params.tile.nr();
    let cached_b = fetch_packed_b(b, k, n, kc_p, nc_p, nr);
    let mut boff = 0usize;
    for jc in (0..n).step_by(nc_p) {
        let nc = nc_p.min(n - jc);
        for pc in (0..k).step_by(kc_p) {
            let kc = kc_p.min(k - pc);
            let len = nc.div_ceil(nr) * kc * nr;
            let panel_scratch;
            let bp: &[f32] = match &cached_b {
                Some(img) => {
                    let s = &img[boff..boff + len];
                    boff += len;
                    s
                }
                None => {
                    let mut buf = ScratchBuf::zeroed(len);
                    pack_b(b, pc, kc, jc, nc, nr, &mut buf);
                    panel_scratch = buf;
                    &panel_scratch
                }
            };
            let panel_ep = if pc + kc == k { ep } else { Epilogue::None };
            pool::parallel_chunks_mut(outs, 1, |i, chunk| {
                let out_i = &mut *chunk[0];
                for (blk, rows) in out_i.chunks_mut(mc_p * n).enumerate() {
                    row_block(
                        &a[i],
                        bp,
                        blk * mc_p,
                        rows.len() / n,
                        pc,
                        kc,
                        jc,
                        nc,
                        n,
                        rows,
                        tier,
                        params.tile,
                        panel_ep,
                    );
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Direct path: the original unblocked loops, for small products.
// ---------------------------------------------------------------------------

/// One output row with a row-major `b`: `o_row += a[i][·] · b` in ikj order
/// with the zero-skip. Shared by the serial and parallel paths so they are
/// bitwise identical by construction.
#[inline]
fn direct_row_b_rowmajor(
    a: &MatView<'_>,
    i: usize,
    b: &[f32],
    k: usize,
    n: usize,
    o_row: &mut [f32],
) {
    for kk in 0..k {
        let aik = a.get(i, kk);
        if aik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..(kk + 1) * n];
        for (o, &bkj) in o_row.iter_mut().zip(b_row) {
            *o += aik * bkj;
        }
    }
}

/// One output row with a column-major `b` (the `nt` case): independent dot
/// products over `b`'s contiguous columns. Each dot is a strict ascending-`k`
/// fold into its own accumulator — a serial dependency chain the compiler
/// cannot reorder — so for a row-major `a` the row is jammed across four
/// columns at a time: four *independent* chains run in one `k` loop, hiding
/// FMA latency without changing any chain's fold order. Every branch folds
/// in ascending `k`, so all are bitwise identical.
#[inline]
fn direct_row_b_colmajor(a: &MatView<'_>, i: usize, b: &[f32], k: usize, o_row: &mut [f32]) {
    if let Layout::RowMajor { cols, .. } = a.layout {
        let a_row = &a.data[i * cols..i * cols + k];
        let mut j = 0;
        while j + 4 <= o_row.len() {
            let c0 = &b[j * k..j * k + k];
            let c1 = &b[(j + 1) * k..(j + 1) * k + k];
            let c2 = &b[(j + 2) * k..(j + 2) * k + k];
            let c3 = &b[(j + 3) * k..(j + 3) * k + k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for kk in 0..k {
                let aik = a_row[kk];
                s0 += aik * c0[kk];
                s1 += aik * c1[kk];
                s2 += aik * c2[kk];
                s3 += aik * c3[kk];
            }
            o_row[j] = s0;
            o_row[j + 1] = s1;
            o_row[j + 2] = s2;
            o_row[j + 3] = s3;
            j += 4;
        }
        for (j, o) in o_row.iter_mut().enumerate().skip(j) {
            let b_col = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&aik, &bkj) in a_row.iter().zip(b_col) {
                acc += aik * bkj;
            }
            *o = acc;
        }
    } else {
        for (j, o) in o_row.iter_mut().enumerate() {
            let b_col = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (kk, &bkj) in b_col.iter().enumerate() {
                acc += a.get(i, kk) * bkj;
            }
            *o = acc;
        }
    }
}

/// One output row for any layout pair, via `get` (only reached by the
/// BatchCol-B combinations, which the conv backward keeps above the blocked
/// threshold except in small tests).
#[inline]
fn direct_row_generic(a: &MatView<'_>, b: &MatView<'_>, i: usize, k: usize, o_row: &mut [f32]) {
    for kk in 0..k {
        let aik = a.get(i, kk);
        if aik == 0.0 {
            continue;
        }
        for (j, o) in o_row.iter_mut().enumerate() {
            *o += aik * b.get(kk, j);
        }
    }
}

fn direct(
    a: &MatView<'_>,
    b: &MatView<'_>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    ep: Epilogue<'_>,
) {
    // Each row's full-k accumulation completes within one `per_row` call,
    // so the epilogue runs right after it — same per-element op order as
    // the separate bias/activation passes (see `Epilogue`).
    let per_row = |i: usize, o_row: &mut [f32]| {
        match b.layout {
            Layout::RowMajor { .. } => direct_row_b_rowmajor(a, i, b.data, k, n, o_row),
            Layout::ColMajor { .. } => direct_row_b_colmajor(a, i, b.data, k, o_row),
            Layout::BatchCol { .. } => direct_row_generic(a, b, i, k, o_row),
        }
        ep.apply(o_row, 0);
    };
    if m * k * n >= PARALLEL_FLOP_THRESHOLD && m > ROWS_PER_BLOCK && pool::threads() > 1 {
        pool::parallel_chunks_mut(out, ROWS_PER_BLOCK * n, |block, o_chunk| {
            let row0 = block * ROWS_PER_BLOCK;
            for (r, o_row) in o_chunk.chunks_mut(n).enumerate() {
                per_row(row0 + r, o_row);
            }
        });
    } else {
        for (i, o_row) in out.chunks_mut(n).enumerate() {
            per_row(i, o_row);
        }
    }
}

// ---------------------------------------------------------------------------
// Blocked path: pack + register-tiled micro-kernel (scalar or SIMD).
// ---------------------------------------------------------------------------

/// Packs rows `i0..i0+mc`, depth `pc..pc+kc` of `a` into `mr`-row strips,
/// `kk`-major within each strip: `dst[strip·kc·mr + kk·mr + r]`. `dst` is
/// pre-zeroed, so rows past `mc` stay zero-padded. On the AVX2 tier,
/// complete 8-row strips of a row-major `a` go through the in-register
/// 8×8 transpose (pure data movement — packing is numerically invisible
/// on every tier).
#[allow(clippy::too_many_arguments)]
fn pack_a(
    a: &MatView<'_>,
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    mr: usize,
    dst: &mut [f32],
    tier: DispatchTier,
) {
    match a.layout {
        Layout::RowMajor { cols, .. } => {
            for t in 0..mc.div_ceil(mr) {
                let strip = &mut dst[t * kc * mr..(t + 1) * kc * mr];
                let rows = mr.min(mc - t * mr);
                let mut kk0 = 0;
                #[cfg(target_arch = "x86_64")]
                if tier == DispatchTier::Avx2 && mr == 8 && rows == 8 {
                    // Safety: tier Avx2 implies the feature was detected;
                    // the strip's 8 source rows each hold `kc` in-bounds
                    // floats starting at this offset, and `strip` holds
                    // `kc·8` packed floats.
                    kk0 = unsafe {
                        simd::pack_a_strip_avx2(
                            a.data.as_ptr().add((i0 + t * 8) * cols + pc),
                            cols,
                            kc,
                            strip,
                        )
                    };
                }
                #[cfg(not(target_arch = "x86_64"))]
                let _ = tier;
                for r in 0..rows {
                    let row = &a.data[(i0 + t * mr + r) * cols + pc..][..kc];
                    for kk in kk0..kc {
                        strip[kk * mr + r] = row[kk];
                    }
                }
            }
        }
        Layout::ColMajor { rows, .. } => {
            // Columns of the stored matrix are contiguous runs of logical
            // rows, and a packed strip's `kk`-th group is exactly `mr` of
            // them — so each (strip, kk) cell is one contiguous copy.
            for t in 0..mc.div_ceil(mr) {
                let strip_rows = mr.min(mc - t * mr);
                let strip = &mut dst[t * kc * mr..(t + 1) * kc * mr];
                for kk in 0..kc {
                    let col = &a.data[(pc + kk) * rows + i0 + t * mr..][..strip_rows];
                    strip[kk * mr..kk * mr + strip_rows].copy_from_slice(col);
                }
            }
        }
        Layout::BatchCol { .. } => {
            for t in 0..mc.div_ceil(mr) {
                let strip = &mut dst[t * kc * mr..(t + 1) * kc * mr];
                for r in 0..mr.min(mc - t * mr) {
                    let row = i0 + t * mr + r;
                    for kk in 0..kc {
                        strip[kk * mr + r] = a.get(row, pc + kk);
                    }
                }
            }
        }
    }
}

/// Packs depth `pc..pc+kc`, columns `jc..jc+nc` of `b` into `nr`-column
/// strips, `kk`-major within each strip: `dst[strip·kc·nr + kk·nr + j]`.
/// `dst` is pre-zeroed, so columns past `nc` stay zero-padded. Row-major
/// rows pack as contiguous `nr`-wide `copy_from_slice` runs, which the
/// compiler lowers to vector moves.
fn pack_b(b: &MatView<'_>, pc: usize, kc: usize, jc: usize, nc: usize, nr: usize, dst: &mut [f32]) {
    match b.layout {
        Layout::RowMajor { cols, .. } => {
            let full = nc / nr;
            for kk in 0..kc {
                let row = &b.data[(pc + kk) * cols + jc..][..nc];
                for s in 0..full {
                    dst[s * kc * nr + kk * nr..s * kc * nr + kk * nr + nr]
                        .copy_from_slice(&row[s * nr..(s + 1) * nr]);
                }
                let rem = nc - full * nr;
                if rem > 0 {
                    dst[full * kc * nr + kk * nr..full * kc * nr + kk * nr + rem]
                        .copy_from_slice(&row[full * nr..]);
                }
            }
        }
        Layout::ColMajor { rows, .. } => {
            for s in 0..nc.div_ceil(nr) {
                let strip = &mut dst[s * kc * nr..(s + 1) * kc * nr];
                for j in 0..nr.min(nc - s * nr) {
                    let col = &b.data[(jc + s * nr + j) * rows + pc..][..kc];
                    for (kk, &v) in col.iter().enumerate() {
                        strip[kk * nr + j] = v;
                    }
                }
            }
        }
        Layout::BatchCol { .. } => {
            for s in 0..nc.div_ceil(nr) {
                let strip = &mut dst[s * kc * nr..(s + 1) * kc * nr];
                for j in 0..nr.min(nc - s * nr) {
                    let col = jc + s * nr + j;
                    for kk in 0..kc {
                        strip[kk * nr + j] = b.get(pc + kk, col);
                    }
                }
            }
        }
    }
}

/// Runs the packed panel loops for one `mc`-row block of C. `out_rows` is
/// the block's row range of the full output (row-major, all `n` columns);
/// `bp` is the packed B panel for `(jc, pc)`. Full `mr×nr` tiles run the
/// micro-kernel **directly on the output** (row stride `n`) — no staging
/// copies on the hot interior. Column-edge tiles (full rows, `jn < nr`)
/// also run in place where the tier has masked C access (AVX2 `vmaskmov`).
/// Remaining ragged tiles are staged through a stack buffer (stride `nr`,
/// zeros in the padding lanes) and the valid `rm×jn` region stored back.
/// The tile homes are numerically identical: the kernel
/// loads the C tile, runs the same fold, and stores it back either way, and
/// an `f32` copy round-trip is value-preserving. Padding lanes accumulate
/// only zero terms from the zero-padded packs and are never stored.
#[allow(clippy::too_many_arguments)]
fn row_block(
    a: &MatView<'_>,
    bp: &[f32],
    i0: usize,
    mc: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
    n: usize,
    out_rows: &mut [f32],
    tier: DispatchTier,
    tile: MicroTile,
    ep: Epilogue<'_>,
) {
    let (mr, nr) = (tile.mr(), tile.nr());
    let mut ap = ScratchBuf::zeroed(mc.div_ceil(mr) * kc * mr);
    pack_a(a, i0, mc, pc, kc, mr, &mut ap, tier);
    let mut stage = [0.0f32; simd::MR_MAX * simd::NR_MAX];
    for s in 0..nc.div_ceil(nr) {
        let j0 = jc + s * nr;
        let jn = nr.min(nc - s * nr);
        let b_strip = &bp[s * kc * nr..(s + 1) * kc * nr];
        for t in 0..mc.div_ceil(mr) {
            let r0 = t * mr;
            let rm = mr.min(mc - r0);
            let a_strip = &ap[t * kc * mr..(t + 1) * kc * mr];
            if rm == mr && jn == nr {
                // Full interior tile: advance it in place.
                simd::micro(
                    tier,
                    tile,
                    kc,
                    a_strip,
                    b_strip,
                    &mut out_rows[r0 * n + j0..],
                    n,
                );
            } else if rm == mr
                && simd::micro_col_edge(
                    tier,
                    tile,
                    kc,
                    a_strip,
                    b_strip,
                    &mut out_rows[r0 * n + j0..],
                    n,
                    jn,
                )
            {
                // Column edge advanced in place through masked C access.
            } else {
                let c_tile = &mut stage[..mr * nr];
                for (r, row) in c_tile.chunks_mut(nr).enumerate() {
                    if r < rm {
                        row[..jn]
                            .copy_from_slice(&out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + jn]);
                        row[jn..].fill(0.0);
                    } else {
                        row.fill(0.0);
                    }
                }
                simd::micro(tier, tile, kc, a_strip, b_strip, c_tile, nr);
                for (r, row) in c_tile.chunks(nr).enumerate().take(rm) {
                    out_rows[(r0 + r) * n + j0..(r0 + r) * n + j0 + jn].copy_from_slice(&row[..jn]);
                }
            }
        }
    }
    // The caller passes a real epilogue only on the final `pc` panel, when
    // every element of this block's `jc..jc+nc` column range holds its
    // finished full-k accumulation.
    if !ep.is_none() {
        for r in 0..mc {
            ep.apply(&mut out_rows[r * n + jc..r * n + jc + nc], jc);
        }
    }
}

/// Total float count of a B operand's fully packed image — every `(jc,
/// pc)` panel, concatenated in the blocked loop's iteration order.
fn packed_b_len(k: usize, n: usize, kc_p: usize, nc_p: usize, nr: usize) -> usize {
    let mut total = 0;
    for jc in (0..n).step_by(nc_p) {
        let nc = nc_p.min(n - jc);
        for pc in (0..k).step_by(kc_p) {
            let kc = kc_p.min(k - pc);
            total += nc.div_ceil(nr) * kc * nr;
        }
    }
    total
}

/// Resolves `b`'s fully packed image through the [`pack_cache`]: `None`
/// when the view is unkeyed, the cache is disabled, or this is the key's
/// first sighting (the caller then packs per panel into scratch as
/// before). The image layout matches [`packed_b_len`]'s iteration order.
fn fetch_packed_b(
    b: &MatView<'_>,
    k: usize,
    n: usize,
    kc_p: usize,
    nc_p: usize,
    nr: usize,
) -> Option<Rc<pack_cache::PackBuf>> {
    let (id, version) = b.key?;
    let key = pack_cache::PackKey {
        id,
        version,
        layout: b.layout_tag(),
        k,
        n,
        kc: kc_p,
        nc: nc_p,
        nr,
    };
    pack_cache::get_or_pack(key, packed_b_len(k, n, kc_p, nc_p, nr), |dst| {
        let mut off = 0;
        for jc in (0..n).step_by(nc_p) {
            let nc = nc_p.min(n - jc);
            for pc in (0..k).step_by(kc_p) {
                let kc = kc_p.min(k - pc);
                let len = nc.div_ceil(nr) * kc * nr;
                pack_b(b, pc, kc, jc, nc, nr, &mut dst[off..off + len]);
                off += len;
            }
        }
    })
}

/// The packed panel loops with explicit tier and blocking parameters
/// (callers resolve them via [`tune::params_for`] or pass pinned values).
#[allow(clippy::too_many_arguments)]
fn blocked(
    a: &MatView<'_>,
    b: &MatView<'_>,
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    tier: DispatchTier,
    params: KernelParams,
    ep: Epilogue<'_>,
) {
    let (mc_p, kc_p, nc_p) = (params.mc, params.kc, params.nc);
    let nr = params.tile.nr();
    // A cached image holds the identical bytes `pack_b` would produce for
    // each (jc, pc) panel, concatenated in this loop's order — a hit just
    // skips the copy (see `pack_cache` for the bitwise argument).
    let cached_b = fetch_packed_b(b, k, n, kc_p, nc_p, nr);
    let mut boff = 0usize;
    for jc in (0..n).step_by(nc_p) {
        let nc = nc_p.min(n - jc);
        for pc in (0..k).step_by(kc_p) {
            let kc = kc_p.min(k - pc);
            let len = nc.div_ceil(nr) * kc * nr;
            // One packed B panel per (jc, pc), shared read-only by every
            // row block; padding stays zero from the arena's zero-fill.
            let panel_scratch;
            let bp: &[f32] = match &cached_b {
                Some(img) => {
                    let s = &img[boff..boff + len];
                    boff += len;
                    s
                }
                None => {
                    let mut buf = ScratchBuf::zeroed(len);
                    pack_b(b, pc, kc, jc, nc, nr, &mut buf);
                    panel_scratch = buf;
                    &panel_scratch
                }
            };
            // Fuse the epilogue only into the final depth panel: that is
            // when each element's full-k accumulation is complete.
            let panel_ep = if pc + kc == k { ep } else { Epilogue::None };
            let blocks = m.div_ceil(mc_p);
            if blocks > 1 && pool::threads() > 1 {
                pool::parallel_chunks_mut(out, mc_p * n, |blk, rows| {
                    let i0 = blk * mc_p;
                    row_block(
                        a,
                        bp,
                        i0,
                        rows.len() / n,
                        pc,
                        kc,
                        jc,
                        nc,
                        n,
                        rows,
                        tier,
                        params.tile,
                        panel_ep,
                    );
                });
            } else {
                for (blk, rows) in out.chunks_mut(mc_p * n).enumerate() {
                    let i0 = blk * mc_p;
                    row_block(
                        a,
                        bp,
                        i0,
                        rows.len() / n,
                        pc,
                        kc,
                        jc,
                        nc,
                        n,
                        rows,
                        tier,
                        params.tile,
                        panel_ep,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Init, TensorRng};

    /// The naive reference: one accumulator per element, `k` ascending, no
    /// skips — the canonical order every kernel path must match bitwise.
    fn reference(a: &MatView<'_>, b: &MatView<'_>) -> Vec<f32> {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.get(i, kk) * b.get(kk, j);
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    #[test]
    fn blocked_path_matches_reference_exactly() {
        let mut rng = TensorRng::seed_from(99);
        // Non-divisible by MR/NR/MC/KC on purpose.
        let (m, k, n) = (131, 67, 29);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let av = MatView::row_major(a.as_slice(), m, k);
        let bv = MatView::row_major(b.as_slice(), k, n);
        let mut out = vec![0.0f32; m * n];
        blocked(
            &av,
            &bv,
            m,
            k,
            n,
            &mut out,
            DispatchTier::Scalar,
            KernelParams::pinned_scalar(),
            Epilogue::None,
        );
        assert_eq!(out, reference(&av, &bv));
    }

    #[test]
    fn every_tile_and_blocking_matches_reference_exactly() {
        let mut rng = TensorRng::seed_from(3);
        // Not a multiple of any mr/nr in the tile set; k crosses one
        // kc=64 boundary below so the C round-trip is exercised too.
        let (m, k, n) = (77, 101, 37);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let av = MatView::row_major(a.as_slice(), m, k);
        let bv = MatView::row_major(b.as_slice(), k, n);
        let want = reference(&av, &bv);
        let tier = simd::detect();
        for &tile in MicroTile::candidates(tier) {
            for (mc, kc, nc) in [(64, 256, 512), (32, 64, 16), (17, 23, 9)] {
                let params = KernelParams { mc, kc, nc, tile };
                let mut out = vec![0.0f32; m * n];
                blocked(&av, &bv, m, k, n, &mut out, tier, params, Epilogue::None);
                assert_eq!(out, want, "tile {tile:?} blocking ({mc},{kc},{nc})");
            }
        }
    }

    #[test]
    fn batch_col_view_reads_nchw_as_np_by_c() {
        // (batch=2, channels=3, positions=2) NCHW data.
        let data: Vec<f32> = (0..12).map(|x| x as f32).collect();
        let v = MatView::batch_transposed(&data, 2, 3, 2);
        assert_eq!((v.rows(), v.cols()), (4, 3));
        // Row (b=0, pos=1), channel 2 → data[0·6 + 2·2 + 1] = 5.
        assert_eq!(v.get(1, 2), 5.0);
        // Row (b=1, pos=0), channel 1 → data[6 + 2 + 0] = 8.
        assert_eq!(v.get(2, 1), 8.0);
    }

    #[test]
    fn micro_kernel_resumes_from_c_tile() {
        // Two kc half-panels must equal one full pass bitwise, for the
        // pinned scalar tile and every tile the host's tier offers.
        let tier = simd::detect();
        let mut tiles = vec![MicroTile::M8N4];
        tiles.extend_from_slice(MicroTile::candidates(tier));
        for tile in tiles {
            let (mr, nr) = (tile.mr(), tile.nr());
            let kc = 10;
            let ap: Vec<f32> = (0..kc * mr).map(|x| (x as f32 * 0.37).sin()).collect();
            let bp: Vec<f32> = (0..kc * nr).map(|x| (x as f32 * 0.61).cos()).collect();
            let mut full = vec![0.0f32; mr * nr];
            simd::micro(tier, tile, kc, &ap, &bp, &mut full, nr);
            let mut halves = vec![0.0f32; mr * nr];
            simd::micro(tier, tile, 5, &ap[..5 * mr], &bp[..5 * nr], &mut halves, nr);
            simd::micro(tier, tile, 5, &ap[5 * mr..], &bp[5 * nr..], &mut halves, nr);
            assert_eq!(full, halves, "tile {tile:?}");
        }
    }
}
