//! Thread-local, size-bucketed `f32` buffer arena.
//!
//! Every tensor-sized allocation in the hot paths — matmul outputs, packing
//! panels, im2col matrices, layer activations, PPO gradient buffers — is a
//! short-lived `Vec<f32>` of a shape that repeats identically step after
//! step. This module recycles those vectors so steady-state training
//! performs **zero heap allocations per step** once every shape has been
//! seen: [`take_vec`] hands back a previously [`recycle`]d buffer of
//! sufficient capacity, and [`Tensor`](crate::Tensor)'s `Drop` returns its
//! storage here automatically.
//!
//! # Design
//!
//! * **Thread-local pools.** Each thread owns its buckets outright, so
//!   `take`/`recycle` are lock-free and two pool workers can never hand out
//!   the same buffer — buffer sharing is impossible by construction, not by
//!   synchronization. A buffer taken on one thread and dropped on another
//!   simply migrates pools.
//! * **Power-of-two buckets.** Requests round up to the next power of two
//!   (min [`MIN_BUCKET`]); recycled buffers file under the largest power of
//!   two their capacity covers. A popped buffer therefore always has enough
//!   capacity for every request mapped to its bucket.
//! * **Bounded retention.** Each thread keeps at most `CHIRON_SCRATCH_CAP`
//!   MiB (default 64) of idle buffers; beyond the cap, recycled buffers are
//!   freed instead of pooled. The cap bounds memory, never correctness.
//! * **Observability.** [`misses`] counts real heap allocations across all
//!   threads; a steady-state training step leaves it unchanged, which the
//!   zero-allocation tests assert directly.
//!
//! Buffers are handed out *cleared* (`len == 0`) by
//! [`take_vec_with_capacity`] or zero-filled by [`take_vec`]; stale contents
//! never leak between users. The zero-fill also preserves `im2col`'s
//! reliance on pre-zeroed padding.
//!
//! # Examples
//!
//! ```
//! use chiron_tensor::scratch::ScratchBuf;
//!
//! let ptr = {
//!     let mut a = ScratchBuf::zeroed(1024);
//!     a[0] = 1.0;
//!     a.as_ptr()
//! }; // dropped → recycled
//! let b = ScratchBuf::zeroed(1024);
//! assert_eq!(b.as_ptr(), ptr); // same storage, zeroed again
//! assert_eq!(b[0], 0.0);
//! ```

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Smallest pooled capacity; requests below it still round up so even
/// scalar tensors recycle.
pub const MIN_BUCKET: usize = 8;

/// Number of power-of-two buckets: `MIN_BUCKET` (2³) up to 2³⁰ elements.
const BUCKETS: usize = 28;

/// Cross-thread count of real heap allocations taken through the arena.
static MISSES: AtomicU64 = AtomicU64::new(0);

/// Per-thread retention cap in `f32` elements, from `CHIRON_SCRATCH_CAP`
/// (MiB, default 64) via [`RuntimeConfig`](chiron_telemetry::RuntimeConfig).
/// Read once per process.
fn cap_elems() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        let mib = chiron_telemetry::RuntimeConfig::global()
            .scratch_cap_mib
            .unwrap_or(64);
        mib.saturating_mul(1 << 20) / std::mem::size_of::<f32>()
    })
}

struct Pools {
    buckets: Vec<Vec<Vec<f32>>>,
    retained: usize,
    misses: u64,
}

thread_local! {
    static POOLS: RefCell<Pools> = RefCell::new(Pools {
        buckets: vec![Vec::new(); BUCKETS],
        retained: 0,
        misses: 0,
    });
}

/// Bucket index for a *request* of `len` elements (round up).
fn bucket_for_request(len: usize) -> usize {
    let size = len.max(MIN_BUCKET).next_power_of_two();
    (size.trailing_zeros() as usize - 3).min(BUCKETS - 1)
}

/// Bucket index for a *returned* buffer of `capacity` (round down), so a
/// pooled buffer always satisfies every request mapped to its bucket.
fn bucket_for_capacity(capacity: usize) -> usize {
    debug_assert!(capacity >= MIN_BUCKET);
    let floor = if capacity.is_power_of_two() {
        capacity
    } else {
        capacity.next_power_of_two() >> 1
    };
    (floor.trailing_zeros() as usize - 3).min(BUCKETS - 1)
}

/// A cleared (`len == 0`) vector with capacity for at least `cap` elements,
/// recycled when possible. Build content with `extend`/`push`/`resize`.
pub fn take_vec_with_capacity(cap: usize) -> Vec<f32> {
    // Arena traffic for the telemetry layer: one relaxed-atomic add per
    // take/miss when enabled, nothing when disabled. Hits are derived as
    // `takes - misses` at flush time.
    static SCRATCH_TAKES: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.scratch.takes");
    static SCRATCH_MISSES: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.scratch.misses");
    SCRATCH_TAKES.add(1);
    let idx = bucket_for_request(cap);
    let recycled = POOLS
        .try_with(|p| {
            let mut p = p.borrow_mut();
            match p.buckets[idx].pop() {
                Some(v) if v.capacity() >= cap => {
                    p.retained -= v.capacity();
                    Some(v)
                }
                // Only possible in the final (clamped) bucket: put the
                // undersized buffer back and fall through to a fresh alloc.
                Some(v) => {
                    p.buckets[idx].push(v);
                    None
                }
                None => None,
            }
        })
        .unwrap_or(None); // TLS torn down (thread exit): plain allocation
    match recycled {
        Some(mut v) => {
            v.clear();
            v
        }
        None => {
            MISSES.fetch_add(1, Ordering::Relaxed);
            SCRATCH_MISSES.add(1);
            let _ = POOLS.try_with(|p| p.borrow_mut().misses += 1);
            Vec::with_capacity(cap.max(MIN_BUCKET).next_power_of_two())
        }
    }
}

/// A zero-filled vector of exactly `len` elements, recycled when possible.
pub fn take_vec(len: usize) -> Vec<f32> {
    let mut v = take_vec_with_capacity(len);
    v.resize(len, 0.0);
    v
}

/// Returns a vector to the calling thread's pool (or frees it if the
/// thread's retention cap is reached or the buffer is too small to pool).
pub fn recycle(v: Vec<f32>) {
    let cap = v.capacity();
    if cap < MIN_BUCKET {
        return; // dropping `v` frees it
    }
    let idx = bucket_for_capacity(cap);
    let rejected = POOLS
        .try_with(|p| {
            let mut p = p.borrow_mut();
            if p.retained + cap <= cap_elems() {
                p.retained += cap;
                p.buckets[idx].push(v);
                None
            } else {
                Some(v)
            }
        })
        .unwrap_or(None);
    drop(rejected);
}

/// Total real heap allocations served through the arena, across all
/// threads, since process start. Steady-state training leaves this
/// unchanged — the zero-allocation tests assert exactly that.
pub fn misses() -> u64 {
    MISSES.load(Ordering::Relaxed)
}

/// Heap allocations served through the arena *on the calling thread*.
/// Unlike [`misses`], this is immune to other threads' activity, so the
/// zero-allocation tests can assert on it even under a parallel test
/// harness.
pub fn thread_misses() -> u64 {
    POOLS.try_with(|p| p.borrow().misses).unwrap_or(0)
}

/// Idle elements currently pooled by the calling thread (test aid).
pub fn retained_elems() -> usize {
    POOLS.try_with(|p| p.borrow().retained).unwrap_or(0)
}

/// An RAII scratch buffer: derefs to `[f32]`, recycles on drop.
///
/// Used for intermediates that never become tensors — kernel packing
/// panels, transpose staging, PPO gradient assembly.
pub struct ScratchBuf {
    buf: Vec<f32>,
}

impl ScratchBuf {
    /// A zero-filled scratch buffer of `len` elements.
    pub fn zeroed(len: usize) -> Self {
        Self { buf: take_vec(len) }
    }

    /// An empty scratch buffer (`len == 0`) with capacity for at least
    /// `cap` elements.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: take_vec_with_capacity(cap),
        }
    }

    /// The underlying vector, for `push`/`extend`-style building.
    pub fn vec_mut(&mut self) -> &mut Vec<f32> {
        &mut self.buf
    }

    /// Consumes the handle, returning the vector (which then recycles
    /// through [`Tensor`](crate::Tensor)'s own drop path if converted).
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.buf)
    }
}

impl Deref for ScratchBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_round_trip() {
        assert_eq!(bucket_for_request(1), 0);
        assert_eq!(bucket_for_request(8), 0);
        assert_eq!(bucket_for_request(9), 1);
        assert_eq!(bucket_for_capacity(8), 0);
        assert_eq!(bucket_for_capacity(24), 1); // floor → 16
                                                // A recycled buffer's bucket never over-promises capacity.
        for cap in [8usize, 13, 16, 100, 1 << 12] {
            let idx = bucket_for_capacity(cap);
            let served = MIN_BUCKET << idx;
            assert!(cap >= served, "bucket {idx} over-promises for cap {cap}");
        }
    }

    #[test]
    fn same_buffer_returns_for_same_shape() {
        let ptr = {
            let b = ScratchBuf::zeroed(777);
            b.as_ptr()
        };
        let again = ScratchBuf::zeroed(777);
        assert_eq!(again.as_ptr(), ptr);
        assert!(again.iter().all(|&x| x == 0.0), "recycled buffer zeroed");
    }

    #[test]
    fn distinct_live_buffers_never_alias() {
        let a = ScratchBuf::zeroed(256);
        let b = ScratchBuf::zeroed(256);
        assert_ne!(a.as_ptr(), b.as_ptr());
    }

    #[test]
    fn take_after_warmup_is_not_a_miss() {
        // Warm a private size unlikely to collide with other tests.
        let warm = ScratchBuf::zeroed(12_345);
        drop(warm);
        let before = thread_misses();
        for _ in 0..10 {
            let b = ScratchBuf::zeroed(12_345);
            drop(b);
        }
        assert_eq!(
            thread_misses(),
            before,
            "steady-state takes must not allocate"
        );
    }

    #[test]
    fn concurrent_workers_never_share_a_live_buffer() {
        crate::pool::set_threads(4);
        crate::pool::parallel_for(64, |block| {
            let mut mine = ScratchBuf::zeroed(512);
            mine.fill(block as f32);
            // Churn the arena while `mine` is live: takes on this or any
            // other worker must never hand out `mine`'s storage, because
            // pools are thread-local and `mine` hasn't been recycled.
            for _ in 0..8 {
                let other = ScratchBuf::zeroed(512);
                assert_ne!(other.as_ptr(), mine.as_ptr());
                std::thread::yield_now();
            }
            assert!(
                mine.iter().all(|&v| v == block as f32),
                "live scratch buffer was clobbered by a concurrent worker"
            );
        });
        crate::pool::set_threads(1);
    }

    #[test]
    fn tiny_buffers_are_not_pooled() {
        let v = Vec::with_capacity(2);
        let retained = retained_elems();
        recycle(v);
        assert_eq!(retained_elems(), retained);
    }
}
