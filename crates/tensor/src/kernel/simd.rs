//! Runtime-dispatched SIMD micro-kernels for the blocked matmul path.
//!
//! # Dispatch tiers
//!
//! [`detect`] probes the host once: x86-64 with AVX2 → [`DispatchTier::Avx2`],
//! aarch64 → [`DispatchTier::Neon`] (NEON is baseline there), anything else →
//! [`DispatchTier::Scalar`]. [`active_tier`] applies the `CHIRON_SIMD` knob on
//! top: `0`/`false` pins the scalar tier, unset or `1` uses the detected one.
//!
//! # Why every tier is bitwise-identical
//!
//! The vector micro-kernels place their lanes **along `n`** (output columns)
//! and keep **one accumulator lane per output element**, folding `k` in
//! ascending order with an *unfused* multiply-then-add:
//!
//! ```text
//! acc[r].lane[j]  =  acc[r].lane[j] + a[r][kk] * b[kk][j]     (kk ascending)
//! ```
//!
//! That is operation-for-operation the canonical scalar chain from the
//! [`kernel`](crate::kernel) module docs: the same two IEEE-754 `f32`
//! operations (`mul`, then `add`), in the same order, with the same operand
//! order. SIMD lanes never combine across `k` (no horizontal reduction) and
//! FMA is deliberately **not** used — a fused multiply-add rounds once where
//! `mul`+`add` rounds twice, which would change low bits. Each lane therefore
//! produces the identical bit pattern the scalar tier produces, including
//! signed zeros, subnormals, and NaN payloads (x86 and aarch64 vector lanes
//! share their scalar ops' NaN-propagation rule, and the operand order is
//! preserved). The property tests and `tests/simd.rs` assert this exact
//! equality on every layout, at non-divisible shapes, and on edge values.
//!
//! The price of unfused arithmetic is half the peak FLOP rate of an FMA
//! kernel; the reward is that the SIMD tier needs no separate numerics
//! story — it *is* the pinned reference, wider.

use std::sync::OnceLock;

/// Instruction-set tier the blocked kernel's micro-kernels run on.
///
/// All tiers compute bitwise-identical results (see module docs); the tier
/// only decides how many output columns one instruction advances.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchTier {
    /// Portable scalar loops — the pinned reference tier.
    Scalar,
    /// x86-64 AVX2: 8-lane `f32` vectors.
    Avx2,
    /// aarch64 NEON: 4-lane `f32` vectors (always available on aarch64).
    Neon,
}

impl DispatchTier {
    /// Stable lowercase label (telemetry counter suffix, bench case names).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DispatchTier::Scalar => "scalar",
            DispatchTier::Avx2 => "avx2",
            DispatchTier::Neon => "neon",
        }
    }
}

/// Register micro-tile shape: how many C rows × columns one micro-kernel
/// invocation advances. `mr × nr` accumulators must fit the register file
/// with room for one B vector and one A broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroTile {
    /// 8×4 — the pinned scalar tile (pre-SIMD kernel, unchanged).
    M8N4,
    /// 8×8 — one 8-lane vector per row; the SIMD default.
    M8N8,
    /// 12×8 — taller tile, more B-vector reuse per load.
    M12N8,
    /// 4×16 — two 8-lane vectors per row, shallow.
    M4N16,
    /// 6×16 — the classic BLIS sgemm shape on 16-register ISAs.
    M6N16,
}

/// Largest `mr` any tile uses (staging-buffer bound).
pub const MR_MAX: usize = 16;
/// Largest `nr` any tile uses (staging-buffer bound).
pub const NR_MAX: usize = 16;

impl MicroTile {
    /// Tile rows.
    #[must_use]
    pub fn mr(self) -> usize {
        match self {
            MicroTile::M8N4 | MicroTile::M8N8 => 8,
            MicroTile::M12N8 => 12,
            MicroTile::M4N16 => 4,
            MicroTile::M6N16 => 6,
        }
    }

    /// Tile columns.
    #[must_use]
    pub fn nr(self) -> usize {
        match self {
            MicroTile::M8N4 => 4,
            MicroTile::M8N8 | MicroTile::M12N8 => 8,
            MicroTile::M4N16 | MicroTile::M6N16 => 16,
        }
    }

    /// Stable name used in the autotune profile cache file.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MicroTile::M8N4 => "m8n4",
            MicroTile::M8N8 => "m8n8",
            MicroTile::M12N8 => "m12n8",
            MicroTile::M4N16 => "m4n16",
            MicroTile::M6N16 => "m6n16",
        }
    }

    /// Inverse of [`MicroTile::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "m8n4" => MicroTile::M8N4,
            "m8n8" => MicroTile::M8N8,
            "m12n8" => MicroTile::M12N8,
            "m4n16" => MicroTile::M4N16,
            "m6n16" => MicroTile::M6N16,
            _ => return None,
        })
    }

    /// Tiles the autotuner may offer a given tier. Scalar keeps the pinned
    /// 8×4; vector tiers choose among the wide tiles (`nr` a multiple of
    /// the lane width, `mr × nr` within the register budget).
    #[must_use]
    pub fn candidates(tier: DispatchTier) -> &'static [MicroTile] {
        match tier {
            DispatchTier::Scalar => &[MicroTile::M8N4],
            DispatchTier::Avx2 | DispatchTier::Neon => &[
                MicroTile::M8N8,
                MicroTile::M12N8,
                MicroTile::M4N16,
                MicroTile::M6N16,
            ],
        }
    }
}

/// Best tier the host supports (pure capability probe; ignores
/// `CHIRON_SIMD`).
#[must_use]
pub fn detect() -> DispatchTier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return DispatchTier::Avx2;
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        return DispatchTier::Neon;
    }
    #[allow(unreachable_code)]
    DispatchTier::Scalar
}

/// The tier the kernel dispatches to: [`detect`]ed capability unless
/// `CHIRON_SIMD=0` pins the scalar tier. Read once per process.
#[must_use]
pub fn active_tier() -> DispatchTier {
    static TIER: OnceLock<DispatchTier> = OnceLock::new();
    *TIER.get_or_init(|| {
        if chiron_telemetry::RuntimeConfig::global().simd == Some(false) {
            DispatchTier::Scalar
        } else {
            detect()
        }
    })
}

// ---------------------------------------------------------------------------
// Micro-kernel entry point
// ---------------------------------------------------------------------------

/// Advances one `mr × nr` C tile by `kc` terms of the canonical fold.
///
/// `c` is the tile's top-left element with row stride `stride` — either a
/// full-size tile living directly in the output (stride = the output's `n`;
/// the fast path, no staging copies) or a stack staging tile (stride = `nr`;
/// used for ragged edge tiles). `ap` is an `mr`-interleaved A strip
/// (`ap[kk·mr + r]`); `bp` an `nr`-interleaved B strip (`bp[kk·nr + j]`).
/// Where a tile lives is numerically invisible: the kernels load the C tile
/// into register accumulators, run the identical fold, and store it back,
/// and an `f32` copy round-trip is value-preserving. Tier/tile pairs
/// without a vector implementation (including every pair on non-SIMD
/// hosts) fall back to the scalar loops — bitwise-equal by the module-docs
/// argument, so the fallback is invisible.
#[inline]
pub(super) fn micro(
    tier: DispatchTier,
    tile: MicroTile,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    stride: usize,
) {
    debug_assert!(ap.len() >= kc * tile.mr());
    debug_assert!(bp.len() >= kc * tile.nr());
    debug_assert!(stride >= tile.nr());
    debug_assert!(c.len() >= (tile.mr() - 1) * stride + tile.nr());
    match tier {
        #[cfg(target_arch = "x86_64")]
        DispatchTier::Avx2 => {
            // Safety: `Avx2` is only ever produced by `detect()` on hosts
            // where `is_x86_feature_detected!("avx2")` held.
            unsafe {
                match tile {
                    MicroTile::M8N8 => avx2::m8n8(kc, ap, bp, c, stride),
                    MicroTile::M12N8 => avx2::m12n8(kc, ap, bp, c, stride),
                    MicroTile::M4N16 => avx2::m4n16(kc, ap, bp, c, stride),
                    MicroTile::M6N16 => avx2::m6n16(kc, ap, bp, c, stride),
                    MicroTile::M8N4 => micro_scalar_m8n4(kc, ap, bp, c, stride),
                }
            }
        }
        #[cfg(target_arch = "aarch64")]
        DispatchTier::Neon => {
            // Safety: NEON is baseline on aarch64.
            unsafe {
                match tile {
                    MicroTile::M8N8 => neon::m8n8(kc, ap, bp, c, stride),
                    MicroTile::M12N8 => neon::m12n8(kc, ap, bp, c, stride),
                    MicroTile::M4N16 => neon::m4n16(kc, ap, bp, c, stride),
                    MicroTile::M6N16 => neon::m6n16(kc, ap, bp, c, stride),
                    MicroTile::M8N4 => micro_scalar_m8n4(kc, ap, bp, c, stride),
                }
            }
        }
        _ => match tile {
            MicroTile::M8N4 => micro_scalar_m8n4(kc, ap, bp, c, stride),
            _ => micro_scalar(kc, tile.mr(), tile.nr(), ap, bp, c, stride),
        },
    }
}

/// Advances a **column-edge** tile (`mr` full rows, only `jn < nr` valid
/// columns) in place in the output, without staging, where the tier has
/// masked C access — currently AVX2 (`vmaskmov`). Returns `false` when no
/// masked kernel exists (scalar, NEON, non-x86 hosts); the caller then
/// takes the staging path, which computes the same bits (module docs).
#[inline]
#[allow(unused_variables, clippy::too_many_arguments)]
pub(super) fn micro_col_edge(
    tier: DispatchTier,
    tile: MicroTile,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    stride: usize,
    jn: usize,
) -> bool {
    debug_assert!((1..tile.nr()).contains(&jn));
    debug_assert!(c.len() >= (tile.mr() - 1) * stride + jn);
    #[cfg(target_arch = "x86_64")]
    if tier == DispatchTier::Avx2 {
        // Safety: `Avx2` is only ever produced by `detect()` on hosts where
        // `is_x86_feature_detected!("avx2")` held; slice bounds checked above.
        unsafe {
            match tile {
                MicroTile::M8N8 => avx2::m8n8_edge(kc, ap, bp, c, stride, jn),
                MicroTile::M12N8 => avx2::m12n8_edge(kc, ap, bp, c, stride, jn),
                MicroTile::M4N16 => avx2::m4n16_edge(kc, ap, bp, c, stride, jn),
                MicroTile::M6N16 => avx2::m6n16_edge(kc, ap, bp, c, stride, jn),
                MicroTile::M8N4 => return false,
            }
        }
        return true;
    }
    false
}

/// The pinned 8×4 scalar micro-kernel with compile-time tile bounds: the
/// accumulator tile lives in a fixed `[[f32; 4]; 8]` the compiler keeps in
/// registers (and SLP-vectorizes — lanes along `j` are independent
/// elements, so auto-vectorization cannot reassociate anything) across the
/// whole depth panel, exactly like the pre-SIMD kernel.
fn micro_scalar_m8n4(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], stride: usize) {
    let mut acc = [[0.0f32; 4]; 8];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * stride..r * stride + 4]);
    }
    for kk in 0..kc {
        let b4: &[f32; 4] = bp[kk * 4..kk * 4 + 4].try_into().expect("4-wide strip");
        let a8 = &ap[kk * 8..kk * 8 + 8];
        for (row, &ar) in acc.iter_mut().zip(a8) {
            for (o, &bv) in row.iter_mut().zip(b4) {
                *o += ar * bv;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * stride..r * stride + 4].copy_from_slice(row);
    }
}

/// The scalar micro-kernel for any tile shape: the canonical ascending-`k`
/// mul-then-add chain, one accumulator (tile slot) per output element.
/// Only reached for vector tiles on hosts without their SIMD tier.
fn micro_scalar(
    kc: usize,
    mr: usize,
    nr: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut [f32],
    stride: usize,
) {
    for kk in 0..kc {
        let b_strip = &bp[kk * nr..kk * nr + nr];
        let a_strip = &ap[kk * mr..kk * mr + mr];
        for (r, &ar) in a_strip.iter().enumerate() {
            let row = &mut c[r * stride..r * stride + nr];
            for (o, &bv) in row.iter_mut().zip(b_strip) {
                *o += ar * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 (x86-64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// `mr × 8` tile: one `__m256` accumulator per row, loaded from C
    /// (row stride `stride`), advanced across the whole depth panel in
    /// registers, stored back once. Per lane this is exactly
    /// `acc = acc + a·b` — `_mm256_mul_ps` then `_mm256_add_ps`, never
    /// `_mm256_fmadd_ps` (see module docs).
    macro_rules! mk_n8 {
        ($name:ident, $mr:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], stride: usize) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 8);
                debug_assert!(c.len() >= ($mr - 1) * stride + 8);
                let mut acc = [_mm256_setzero_ps(); $mr];
                for (r, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_loadu_ps(c.as_ptr().add(r * stride));
                }
                for kk in 0..kc {
                    let bv = _mm256_loadu_ps(bp.as_ptr().add(kk * 8));
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for (r, a) in acc.iter_mut().enumerate() {
                        let ar = _mm256_set1_ps(*a_col.add(r));
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(ar, bv));
                    }
                }
                for (r, a) in acc.iter().enumerate() {
                    _mm256_storeu_ps(c.as_mut_ptr().add(r * stride), *a);
                }
            }
        };
    }
    mk_n8!(m8n8, 8);
    mk_n8!(m12n8, 12);

    /// `mr × 16` tile: two `__m256` accumulators per row.
    macro_rules! mk_n16 {
        ($name:ident, $mr:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], stride: usize) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 16);
                debug_assert!(c.len() >= ($mr - 1) * stride + 16);
                let mut lo = [_mm256_setzero_ps(); $mr];
                let mut hi = [_mm256_setzero_ps(); $mr];
                for (r, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                    *l = _mm256_loadu_ps(c.as_ptr().add(r * stride));
                    *h = _mm256_loadu_ps(c.as_ptr().add(r * stride + 8));
                }
                for kk in 0..kc {
                    let b0 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16));
                    let b1 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16 + 8));
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for (r, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                        let ar = _mm256_set1_ps(*a_col.add(r));
                        *l = _mm256_add_ps(*l, _mm256_mul_ps(ar, b0));
                        *h = _mm256_add_ps(*h, _mm256_mul_ps(ar, b1));
                    }
                }
                for (r, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
                    _mm256_storeu_ps(c.as_mut_ptr().add(r * stride), *l);
                    _mm256_storeu_ps(c.as_mut_ptr().add(r * stride + 8), *h);
                }
            }
        };
    }
    mk_n16!(m4n16, 4);
    mk_n16!(m6n16, 6);

    /// Column-edge variant of [`mk_n8!`]: same fold on all 8 lanes, but C is
    /// read and written through AVX2 masked loads/stores covering only the
    /// first `jn` columns — so a ragged output edge is advanced in place with
    /// no staging copies. Lanes `≥ jn` compute against the B pack's zero
    /// padding and are never stored; lanes `< jn` execute the identical op
    /// sequence as the full-width kernel, so edge tiles stay bitwise-equal.
    /// (Masked-out lanes cannot fault: `vmaskmov` suppresses access to them.)
    macro_rules! mk_n8_edge {
        ($name:ident, $mr:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(
                kc: usize,
                ap: &[f32],
                bp: &[f32],
                c: &mut [f32],
                stride: usize,
                jn: usize,
            ) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 8);
                debug_assert!((1..8).contains(&jn));
                debug_assert!(c.len() >= ($mr - 1) * stride + jn);
                let lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
                let mask = _mm256_cmpgt_epi32(_mm256_set1_epi32(jn as i32), lane);
                let mut acc = [_mm256_setzero_ps(); $mr];
                for (r, a) in acc.iter_mut().enumerate() {
                    *a = _mm256_maskload_ps(c.as_ptr().add(r * stride), mask);
                }
                for kk in 0..kc {
                    let bv = _mm256_loadu_ps(bp.as_ptr().add(kk * 8));
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for (r, a) in acc.iter_mut().enumerate() {
                        let ar = _mm256_set1_ps(*a_col.add(r));
                        *a = _mm256_add_ps(*a, _mm256_mul_ps(ar, bv));
                    }
                }
                for (r, a) in acc.iter().enumerate() {
                    _mm256_maskstore_ps(c.as_mut_ptr().add(r * stride), mask, *a);
                }
            }
        };
    }
    mk_n8_edge!(m8n8_edge, 8);
    mk_n8_edge!(m12n8_edge, 12);

    /// Column-edge variant of [`mk_n16!`]; two masks cover the 16 lanes.
    macro_rules! mk_n16_edge {
        ($name:ident, $mr:expr) => {
            #[target_feature(enable = "avx2")]
            pub unsafe fn $name(
                kc: usize,
                ap: &[f32],
                bp: &[f32],
                c: &mut [f32],
                stride: usize,
                jn: usize,
            ) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 16);
                debug_assert!((1..16).contains(&jn));
                debug_assert!(c.len() >= ($mr - 1) * stride + jn);
                let lane = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
                let m0 = _mm256_cmpgt_epi32(_mm256_set1_epi32(jn as i32), lane);
                let m1 = _mm256_cmpgt_epi32(_mm256_set1_epi32(jn as i32 - 8), lane);
                let mut lo = [_mm256_setzero_ps(); $mr];
                let mut hi = [_mm256_setzero_ps(); $mr];
                for (r, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                    *l = _mm256_maskload_ps(c.as_ptr().add(r * stride), m0);
                    // `wrapping_add`: when `jn ≤ 8` the hi mask is all-zero
                    // and this address may lie past the slice — it is never
                    // accessed, but plain `add` would still be UB to form.
                    *h = _mm256_maskload_ps(c.as_ptr().wrapping_add(r * stride + 8), m1);
                }
                for kk in 0..kc {
                    let b0 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16));
                    let b1 = _mm256_loadu_ps(bp.as_ptr().add(kk * 16 + 8));
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for (r, (l, h)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
                        let ar = _mm256_set1_ps(*a_col.add(r));
                        *l = _mm256_add_ps(*l, _mm256_mul_ps(ar, b0));
                        *h = _mm256_add_ps(*h, _mm256_mul_ps(ar, b1));
                    }
                }
                for (r, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
                    _mm256_maskstore_ps(c.as_mut_ptr().add(r * stride), m0, *l);
                    _mm256_maskstore_ps(c.as_mut_ptr().wrapping_add(r * stride + 8), m1, *h);
                }
            }
        };
    }
    mk_n16_edge!(m4n16_edge, 4);
    mk_n16_edge!(m6n16_edge, 6);

    /// Transposes one 8×8 `f32` block with in-register unpack/shuffle/permute
    /// passes: `src` points at 8 row-major matrix rows (stride `src_stride`),
    /// `dst` receives the block `kk`-major (`dst[kk·8 + r]`) — the packed-A
    /// strip layout. Pure data movement: bit patterns are copied, never
    /// operated on, so packing stays numerically invisible.
    #[target_feature(enable = "avx2")]
    pub unsafe fn transpose8x8(src: *const f32, src_stride: usize, dst: *mut f32) {
        let a0 = _mm256_loadu_ps(src);
        let a1 = _mm256_loadu_ps(src.add(src_stride));
        let a2 = _mm256_loadu_ps(src.add(2 * src_stride));
        let a3 = _mm256_loadu_ps(src.add(3 * src_stride));
        let a4 = _mm256_loadu_ps(src.add(4 * src_stride));
        let a5 = _mm256_loadu_ps(src.add(5 * src_stride));
        let a6 = _mm256_loadu_ps(src.add(6 * src_stride));
        let a7 = _mm256_loadu_ps(src.add(7 * src_stride));
        // 32-bit interleave within 128-bit lanes.
        let b0 = _mm256_unpacklo_ps(a0, a1);
        let b1 = _mm256_unpackhi_ps(a0, a1);
        let b2 = _mm256_unpacklo_ps(a2, a3);
        let b3 = _mm256_unpackhi_ps(a2, a3);
        let b4 = _mm256_unpacklo_ps(a4, a5);
        let b5 = _mm256_unpackhi_ps(a4, a5);
        let b6 = _mm256_unpacklo_ps(a6, a7);
        let b7 = _mm256_unpackhi_ps(a6, a7);
        // 64-bit regroup: four consecutive rows per lane half.
        let c0 = _mm256_shuffle_ps(b0, b2, 0b01_00_01_00);
        let c1 = _mm256_shuffle_ps(b0, b2, 0b11_10_11_10);
        let c2 = _mm256_shuffle_ps(b1, b3, 0b01_00_01_00);
        let c3 = _mm256_shuffle_ps(b1, b3, 0b11_10_11_10);
        let c4 = _mm256_shuffle_ps(b4, b6, 0b01_00_01_00);
        let c5 = _mm256_shuffle_ps(b4, b6, 0b11_10_11_10);
        let c6 = _mm256_shuffle_ps(b5, b7, 0b01_00_01_00);
        let c7 = _mm256_shuffle_ps(b5, b7, 0b11_10_11_10);
        // 128-bit lane swap completes the transpose.
        _mm256_storeu_ps(dst, _mm256_permute2f128_ps(c0, c4, 0x20));
        _mm256_storeu_ps(dst.add(8), _mm256_permute2f128_ps(c1, c5, 0x20));
        _mm256_storeu_ps(dst.add(16), _mm256_permute2f128_ps(c2, c6, 0x20));
        _mm256_storeu_ps(dst.add(24), _mm256_permute2f128_ps(c3, c7, 0x20));
        _mm256_storeu_ps(dst.add(32), _mm256_permute2f128_ps(c0, c4, 0x31));
        _mm256_storeu_ps(dst.add(40), _mm256_permute2f128_ps(c1, c5, 0x31));
        _mm256_storeu_ps(dst.add(48), _mm256_permute2f128_ps(c2, c6, 0x31));
        _mm256_storeu_ps(dst.add(56), _mm256_permute2f128_ps(c3, c7, 0x31));
    }
}

/// SIMD-transposes full 8-row strips of a row-major A panel into the packed
/// `dst[kk·8 + r]` layout, `8·kc` floats per strip. Only reachable on the
/// AVX2 tier with `mr == 8` and a complete strip; the caller handles partial
/// strips and the `kc % 8` tail with the scalar packer. Returns how many
/// leading `kk` were packed (a multiple of 8).
///
/// # Safety
///
/// AVX2 must be available (the caller dispatches on [`DispatchTier::Avx2`]),
/// `src` must point at 8 rows of at least `kc` readable floats spaced
/// `src_stride` apart, and `dst` must hold at least `kc·8` floats.
#[cfg(target_arch = "x86_64")]
pub(super) unsafe fn pack_a_strip_avx2(
    src: *const f32,
    src_stride: usize,
    kc: usize,
    dst: &mut [f32],
) -> usize {
    debug_assert!(dst.len() >= kc * 8);
    let full = kc - kc % 8;
    for kk in (0..full).step_by(8) {
        avx2::transpose8x8(src.add(kk), src_stride, dst.as_mut_ptr().add(kk * 8));
    }
    full
}

// ---------------------------------------------------------------------------
// NEON (aarch64)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use std::arch::aarch64::*;

    /// `mr × 8` tile: two `float32x4_t` accumulators per row, unfused
    /// `vmulq`+`vaddq` (never `vfmaq`) to preserve the canonical two-rounding
    /// chain.
    macro_rules! mk_n8 {
        ($name:ident, $mr:expr) => {
            pub unsafe fn $name(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], stride: usize) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 8);
                debug_assert!(c.len() >= ($mr - 1) * stride + 8);
                let mut lo = [vdupq_n_f32(0.0); $mr];
                let mut hi = [vdupq_n_f32(0.0); $mr];
                for r in 0..$mr {
                    lo[r] = vld1q_f32(c.as_ptr().add(r * stride));
                    hi[r] = vld1q_f32(c.as_ptr().add(r * stride + 4));
                }
                for kk in 0..kc {
                    let b0 = vld1q_f32(bp.as_ptr().add(kk * 8));
                    let b1 = vld1q_f32(bp.as_ptr().add(kk * 8 + 4));
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for r in 0..$mr {
                        let ar = vdupq_n_f32(*a_col.add(r));
                        lo[r] = vaddq_f32(lo[r], vmulq_f32(ar, b0));
                        hi[r] = vaddq_f32(hi[r], vmulq_f32(ar, b1));
                    }
                }
                for r in 0..$mr {
                    vst1q_f32(c.as_mut_ptr().add(r * stride), lo[r]);
                    vst1q_f32(c.as_mut_ptr().add(r * stride + 4), hi[r]);
                }
            }
        };
    }
    mk_n8!(m8n8, 8);
    mk_n8!(m12n8, 12);

    /// `mr × 16` tile: four `float32x4_t` accumulators per row.
    macro_rules! mk_n16 {
        ($name:ident, $mr:expr) => {
            pub unsafe fn $name(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], stride: usize) {
                debug_assert!(ap.len() >= kc * $mr && bp.len() >= kc * 16);
                debug_assert!(c.len() >= ($mr - 1) * stride + 16);
                let mut acc = [[vdupq_n_f32(0.0); 4]; $mr];
                for r in 0..$mr {
                    for q in 0..4 {
                        acc[r][q] = vld1q_f32(c.as_ptr().add(r * stride + q * 4));
                    }
                }
                for kk in 0..kc {
                    let b: [float32x4_t; 4] = [
                        vld1q_f32(bp.as_ptr().add(kk * 16)),
                        vld1q_f32(bp.as_ptr().add(kk * 16 + 4)),
                        vld1q_f32(bp.as_ptr().add(kk * 16 + 8)),
                        vld1q_f32(bp.as_ptr().add(kk * 16 + 12)),
                    ];
                    let a_col = ap.as_ptr().add(kk * $mr);
                    for r in 0..$mr {
                        let ar = vdupq_n_f32(*a_col.add(r));
                        for q in 0..4 {
                            acc[r][q] = vaddq_f32(acc[r][q], vmulq_f32(ar, b[q]));
                        }
                    }
                }
                for r in 0..$mr {
                    for q in 0..4 {
                        vst1q_f32(c.as_mut_ptr().add(r * stride + q * 4), acc[r][q]);
                    }
                }
            }
        };
    }
    mk_n16!(m4n16, 4);
    mk_n16!(m6n16, 6);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_dims_fit_staging_bounds() {
        for tier in [DispatchTier::Scalar, DispatchTier::Avx2, DispatchTier::Neon] {
            for &tile in MicroTile::candidates(tier) {
                assert!(tile.mr() <= MR_MAX && tile.nr() <= NR_MAX);
                assert_eq!(MicroTile::from_name(tile.name()), Some(tile));
            }
        }
    }

    #[test]
    fn active_tier_is_detected_or_scalar() {
        let tier = active_tier();
        assert!(tier == detect() || tier == DispatchTier::Scalar);
    }

    /// Every vector micro-kernel must equal the scalar micro-kernel bitwise
    /// on the same strips — the lane-order argument, checked directly.
    #[test]
    fn vector_micro_kernels_match_scalar_bitwise() {
        let tier = detect();
        if tier == DispatchTier::Scalar {
            return; // nothing to cross-check on this host
        }
        let kc = 37; // not a multiple of any unroll
        for &tile in MicroTile::candidates(tier) {
            let (mr, nr) = (tile.mr(), tile.nr());
            let ap: Vec<f32> = (0..kc * mr)
                .map(|x| ((x * 37) as f32 * 0.23).sin())
                .collect();
            let bp: Vec<f32> = (0..kc * nr)
                .map(|x| ((x * 61) as f32 * 0.17).cos())
                .collect();
            // Both tile homes: packed staging (stride = nr) and direct in a
            // wider output row (stride > nr).
            for stride in [nr, nr + 13] {
                let seed: Vec<f32> = (0..(mr - 1) * stride + nr)
                    .map(|x| (x as f32 * 0.71).tan())
                    .collect();
                let mut scalar = seed.clone();
                micro_scalar(kc, mr, nr, &ap, &bp, &mut scalar, stride);
                let mut vector = seed.clone();
                micro(tier, tile, kc, &ap, &bp, &mut vector, stride);
                let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
                let vb: Vec<u32> = vector.iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, vb, "tile {tile:?} stride {stride} diverged from scalar");
            }
        }
    }

    /// A masked column-edge tile must produce the same bits in its valid
    /// columns as the staged path, and must not touch anything else.
    #[test]
    fn masked_col_edge_matches_staged_bitwise() {
        let tier = detect();
        let kc = 31;
        for &tile in MicroTile::candidates(tier) {
            let (mr, nr) = (tile.mr(), tile.nr());
            let ap: Vec<f32> = (0..kc * mr)
                .map(|x| ((x * 41) as f32 * 0.13).sin())
                .collect();
            for jn in 1..nr {
                // B pack zero-padded past jn, as pack_b leaves it.
                let bp: Vec<f32> = (0..kc * nr)
                    .map(|x| {
                        if x % nr < jn {
                            ((x * 29) as f32 * 0.11).cos()
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let stride = nr + 5;
                let seed: Vec<f32> = (0..(mr - 1) * stride + jn)
                    .map(|x| (x as f32 * 0.57).sin())
                    .collect();
                // Staged reference: copy valid columns in, run full tile,
                // copy valid columns back.
                let mut stage = vec![0.0f32; mr * nr];
                for r in 0..mr {
                    stage[r * nr..r * nr + jn].copy_from_slice(&seed[r * stride..r * stride + jn]);
                }
                micro(tier, tile, kc, &ap, &bp, &mut stage, nr);
                let mut want = seed.clone();
                for r in 0..mr {
                    want[r * stride..r * stride + jn].copy_from_slice(&stage[r * nr..r * nr + jn]);
                }
                let mut got = seed.clone();
                if !micro_col_edge(tier, tile, kc, &ap, &bp, &mut got, stride, jn) {
                    continue; // no masked kernel on this tier
                }
                let wb: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = got.iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, gb, "tile {tile:?} jn {jn} masked edge diverged");
            }
        }
    }

    /// The fixed 8×4 kernel must equal the generic scalar loops bitwise — it
    /// is the same fold with compile-time bounds, so any divergence would be
    /// a transcription bug.
    #[test]
    fn pinned_m8n4_matches_generic_scalar_bitwise() {
        let kc = 29;
        let ap: Vec<f32> = (0..kc * 8)
            .map(|x| ((x * 13) as f32 * 0.31).sin())
            .collect();
        let bp: Vec<f32> = (0..kc * 4).map(|x| ((x * 7) as f32 * 0.19).cos()).collect();
        for stride in [4usize, 21] {
            let seed: Vec<f32> = (0..7 * stride + 4)
                .map(|x| (x as f32 * 0.43).sin())
                .collect();
            let mut generic = seed.clone();
            micro_scalar(kc, 8, 4, &ap, &bp, &mut generic, stride);
            let mut fixed = seed.clone();
            micro_scalar_m8n4(kc, &ap, &bp, &mut fixed, stride);
            let gb: Vec<u32> = generic.iter().map(|v| v.to_bits()).collect();
            let fb: Vec<u32> = fixed.iter().map(|v| v.to_bits()).collect();
            assert_eq!(gb, fb, "m8n4 fixed kernel diverged at stride {stride}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_pack_strip_transposes_exactly() {
        if detect() != DispatchTier::Avx2 {
            return;
        }
        let kc = 19; // 16 SIMD + 3 scalar tail
        let stride = 23;
        let src: Vec<f32> = (0..8 * stride).map(|x| x as f32).collect();
        let mut dst = vec![0.0f32; kc * 8];
        // Safety: AVX2 verified above; src holds 8 rows of `stride ≥ kc`
        // floats, dst holds kc·8.
        let packed = unsafe { pack_a_strip_avx2(src.as_ptr(), stride, kc, &mut dst) };
        assert_eq!(packed, 16);
        for kk in 0..packed {
            for r in 0..8 {
                assert_eq!(dst[kk * 8 + r], src[r * stride + kk]);
            }
        }
    }
}
