//! Thread-local cache of packed B operand panels.
//!
//! The blocked kernel spends a significant share of small-GEMM runtime
//! re-packing the *same* operand: model weights are packed once per forward
//! call, then thrown away — although the next eval chunk, minibatch, or
//! participant replica multiplies by byte-identical weights again. This
//! module caches the fully packed B image (every `(jc, pc)` panel,
//! concatenated in loop order) keyed by the operand tensor's
//! [`pack_key`](crate::Tensor::pack_key) identity plus the view layout and
//! the blocking geometry that shaped the pack.
//!
//! # Why B-side only
//!
//! In this codebase weights always enter a product as the **B** operand:
//! `x·W` in forward (row-major B), `dy·Wᵀ` in Linear/conv backward
//! (col-major B). The A operands are activations and gradients — fresh
//! tensors that never recur — and A panels are packed per row block on the
//! worker threads anyway. Caching B captures all the reuse there is.
//!
//! # Bitwise invisibility
//!
//! A cache hit replays bytes produced by the very same `pack_b`
//! (`super::pack_b`) call the miss path would make: equal keys imply
//! byte-identical source data (see `Tensor::pack_key`) and identical pack
//! geometry, so the micro-kernel consumes identical panels either way.
//! `CHIRON_PACK_CACHE=0` (or [`set_pack_cache_enabled`]`(Some(false))`)
//! disables reuse entirely as the verification pin.
//!
//! # Admission and eviction
//!
//! Keys are only *admitted* on their second sighting: the first miss
//! records the key in a small fixed ring and packs into ordinary scratch.
//! One-shot operands (activation transposes, per-step gradients, autotune
//! trials) therefore never allocate a cache entry — which also keeps the
//! steady-state training step allocation-free (`tests/zero_alloc.rs`).
//! Entries are evicted least-recently-used past the byte cap
//! (`CHIRON_PACK_CACHE_CAP` MiB, default 64), and inserting a new version
//! of a tensor sweeps that tensor's stale versions immediately.
//!
//! The cache is thread-local: the packing thread (the caller of the
//! blocked kernel) owns its entries, and pool workers only ever see plain
//! `&[f32]` borrows of a packed image for the duration of a parallel
//! region.

use crate::scratch;
use chiron_telemetry::Counter;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};

/// Identity of one packed-B image: tensor content identity, view layout,
/// logical shape, and the blocking geometry that shaped the pack. The
/// dispatch tier is deliberately absent — `pack_b` is tier-independent, so
/// one image serves every tier that shares `nr`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct PackKey {
    pub id: u64,
    pub version: u64,
    pub layout: u8,
    pub k: usize,
    pub n: usize,
    pub kc: usize,
    pub nc: usize,
    pub nr: usize,
}

/// An immutable packed image whose storage returns to the scratch arena on
/// drop, keeping cache turnover off the heap in steady state.
pub(crate) struct PackBuf(Vec<f32>);

impl std::ops::Deref for PackBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl Drop for PackBuf {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.0));
    }
}

/// Per-thread cache hit/miss/eviction counts, in the style of
/// [`scratch::thread_misses`] — cheap enough to read in assertions even
/// when the telemetry layer is disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PackStats {
    /// Packs served from the cache instead of re-packing.
    pub hits: u64,
    /// Lookups that had to pack (first or once-only sightings included).
    pub misses: u64,
    /// Entries dropped by the LRU cap or the stale-version sweep.
    pub evictions: u64,
}

/// Admission-ring length: how many distinct once-seen keys are remembered
/// before the oldest recollection is overwritten. A handful of weight
/// tensors plus transient per-step keys fit comfortably.
const RING: usize = 64;

struct Cache {
    map: HashMap<PackKey, Entry>,
    bytes: usize,
    clock: u64,
    ring: [Option<PackKey>; RING],
    ring_pos: usize,
    stats: PackStats,
}

struct Entry {
    buf: Rc<PackBuf>,
    stamp: u64,
}

thread_local! {
    static CACHE: RefCell<Cache> = RefCell::new(Cache {
        map: HashMap::new(),
        bytes: 0,
        clock: 0,
        ring: [None; RING],
        ring_pos: 0,
        stats: PackStats::default(),
    });
}

static PACK_HITS: Counter = Counter::new("tensor.kernel.pack.hits");
static PACK_MISSES: Counter = Counter::new("tensor.kernel.pack.misses");
static PACK_EVICTIONS: Counter = Counter::new("tensor.kernel.pack.evictions");

/// Process-wide override for the enable switch: 0 = follow the
/// environment, 1 = forced off, 2 = forced on. In-process tests need this
/// because `RuntimeConfig::global()` latches the environment once.
static FORCE_ENABLED: AtomicU8 = AtomicU8::new(0);

/// Process-wide cap override in bytes (0 = follow the environment).
static FORCE_CAP: AtomicUsize = AtomicUsize::new(0);

/// Overrides the `CHIRON_PACK_CACHE` switch for this process (test and
/// benchmark hook, like `pool::set_threads`). `None` restores the
/// environment default. The cache is bitwise-invisible either way.
pub fn set_pack_cache_enabled(v: Option<bool>) {
    let code = match v {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FORCE_ENABLED.store(code, Ordering::Relaxed);
}

/// Overrides the `CHIRON_PACK_CACHE_CAP` byte budget for this thread's
/// cache (test hook). `None` restores the environment default.
pub fn set_pack_cache_cap_bytes(v: Option<usize>) {
    // 0 means "follow the environment"; a caller asking for a literal zero
    // cap gets 1 byte, which rejects every insert just the same.
    FORCE_CAP.store(v.map(|c| c.max(1)).unwrap_or(0), Ordering::Relaxed);
}

/// Whether packed-operand reuse is currently enabled.
pub fn pack_cache_enabled() -> bool {
    match FORCE_ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => chiron_telemetry::RuntimeConfig::global()
            .pack_cache
            .unwrap_or(true),
    }
}

fn cap_bytes() -> usize {
    let forced = FORCE_CAP.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    let mib = chiron_telemetry::RuntimeConfig::global()
        .pack_cache_cap_mib
        .unwrap_or(64);
    mib.saturating_mul(1024 * 1024).max(1)
}

/// This thread's cumulative cache statistics.
pub fn pack_stats() -> PackStats {
    CACHE.with(|c| c.borrow().stats)
}

/// Drops every entry and admission record held by this thread (test hook).
pub fn clear_pack_cache() {
    CACHE.with(|c| {
        let mut c = c.borrow_mut();
        c.map.clear();
        c.bytes = 0;
        c.ring = [None; RING];
        c.ring_pos = 0;
    });
}

/// Looks up `key`, packing and (maybe) admitting on miss.
///
/// Returns `None` when the caller should pack into its own scratch (cache
/// disabled, or the key's first sighting). Otherwise returns the shared
/// packed image — freshly filled by `fill` on an admitted miss. `fill`
/// receives a zeroed buffer of `len` floats and must write the complete
/// concatenated panel image.
pub(crate) fn get_or_pack(
    key: PackKey,
    len: usize,
    fill: impl FnOnce(&mut [f32]),
) -> Option<Rc<PackBuf>> {
    if !pack_cache_enabled() {
        return None;
    }
    CACHE.with(|cell| {
        let mut c = cell.borrow_mut();
        c.clock += 1;
        let now = c.clock;
        if let Some(e) = c.map.get_mut(&key) {
            e.stamp = now;
            let buf = Rc::clone(&e.buf);
            c.stats.hits += 1;
            PACK_HITS.add(1);
            return Some(buf);
        }
        c.stats.misses += 1;
        PACK_MISSES.add(1);
        if !c.ring.contains(&Some(key)) {
            // First sighting: remember it, let the caller pack one-shot.
            let pos = c.ring_pos;
            c.ring[pos] = Some(key);
            c.ring_pos = (pos + 1) % RING;
            return None;
        }
        // Second sighting: this operand recurs — admit it. Sweep stale
        // versions of the same tensor first so their buffers recycle into
        // the arena before we take a (same-sized) replacement.
        let stale: Vec<PackKey> = c
            .map
            .keys()
            .filter(|k| k.id == key.id && k.version != key.version)
            .copied()
            .collect();
        for s in stale {
            if let Some(e) = c.map.remove(&s) {
                c.bytes -= e.buf.len() * 4;
                c.stats.evictions += 1;
                PACK_EVICTIONS.add(1);
            }
        }
        let mut buf = scratch::take_vec(len);
        fill(&mut buf);
        let rc = Rc::new(PackBuf(buf));
        let cap = cap_bytes();
        if len * 4 > cap {
            // Larger than the whole budget: hand it out once, uncached.
            return Some(rc);
        }
        while c.bytes + len * 4 > cap {
            let Some(oldest) = c.map.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| *k) else {
                break;
            };
            if let Some(e) = c.map.remove(&oldest) {
                c.bytes -= e.buf.len() * 4;
                c.stats.evictions += 1;
                PACK_EVICTIONS.add(1);
            }
        }
        c.bytes += len * 4;
        c.map.insert(
            key,
            Entry {
                buf: Rc::clone(&rc),
                stamp: now,
            },
        );
        Some(rc)
    })
}

/// Serializes tests (here and in `crate::proptests`) that flip the
/// process-wide cache override, so a concurrently running test never
/// observes a foreign forced state.
#[cfg(test)]
pub(crate) fn test_override_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(id: u64, version: u64, n: usize) -> PackKey {
        PackKey {
            id,
            version,
            layout: 0,
            k: 8,
            n,
            kc: 8,
            nc: n,
            nr: 4,
        }
    }

    /// Serializes tests that flip the process-wide override.
    fn with_cache_on(f: impl FnOnce()) {
        let _g = super::test_override_lock();
        set_pack_cache_enabled(Some(true));
        clear_pack_cache();
        f();
        set_pack_cache_enabled(None);
        clear_pack_cache();
    }

    #[test]
    fn admits_on_second_sighting_then_hits() {
        with_cache_on(|| {
            let k = key(1, 0, 16);
            let s0 = pack_stats();
            assert!(get_or_pack(k, 64, |_| {}).is_none(), "first sighting");
            let p = get_or_pack(k, 64, |d| d.fill(2.0)).expect("admitted");
            assert_eq!(p[0], 2.0);
            let q = get_or_pack(k, 64, |_| panic!("must not repack")).expect("hit");
            assert_eq!(q[0], 2.0);
            let s = pack_stats();
            assert_eq!(s.hits - s0.hits, 1);
            assert_eq!(s.misses - s0.misses, 2);
        });
    }

    #[test]
    fn new_version_sweeps_stale_entries() {
        with_cache_on(|| {
            let old = key(7, 1, 16);
            let new = key(7, 2, 16);
            get_or_pack(old, 64, |_| {});
            get_or_pack(old, 64, |d| d.fill(1.0)).unwrap();
            let s0 = pack_stats();
            get_or_pack(new, 64, |_| {});
            get_or_pack(new, 64, |d| d.fill(9.0)).unwrap();
            assert_eq!(pack_stats().evictions - s0.evictions, 1, "stale swept");
            // The old version is gone: looking it up misses (and its ring
            // record was long overwritten by map admission, so it repacks).
            let r = get_or_pack(old, 64, |d| d.fill(5.0));
            assert!(r.is_none() || r.unwrap()[0] == 5.0);
        });
    }

    #[test]
    fn lru_evicts_past_the_cap() {
        with_cache_on(|| {
            set_pack_cache_cap_bytes(Some(2 * 64 * 4));
            let a = key(21, 0, 16);
            let b = key(22, 0, 16);
            let c = key(23, 0, 16);
            for k in [a, b, c] {
                get_or_pack(k, 64, |_| {});
            }
            get_or_pack(a, 64, |d| d.fill(1.0)).unwrap();
            get_or_pack(b, 64, |d| d.fill(2.0)).unwrap();
            // Touch `a` so `b` is the LRU victim when `c` is admitted.
            get_or_pack(a, 64, |_| panic!("hit expected")).unwrap();
            let s0 = pack_stats();
            get_or_pack(c, 64, |d| d.fill(3.0)).unwrap();
            assert_eq!(pack_stats().evictions - s0.evictions, 1);
            assert_eq!(get_or_pack(a, 64, |_| panic!("a stays")).unwrap()[0], 1.0);
            let s1 = pack_stats();
            // `b` was evicted → miss (its ring slot still remembers it, so
            // it re-admits with the fill value).
            let r = get_or_pack(b, 64, |d| d.fill(8.0)).unwrap();
            assert_eq!(r[0], 8.0);
            assert_eq!(pack_stats().misses - s1.misses, 1);
            set_pack_cache_cap_bytes(None);
        });
    }

    #[test]
    fn oversized_entries_are_served_but_not_stored() {
        with_cache_on(|| {
            set_pack_cache_cap_bytes(Some(16));
            let k = key(31, 0, 16);
            get_or_pack(k, 64, |_| {});
            let p = get_or_pack(k, 64, |d| d.fill(4.0)).unwrap();
            assert_eq!(p[0], 4.0);
            // Not stored: next lookup packs again.
            let q = get_or_pack(k, 64, |d| d.fill(6.0)).unwrap();
            assert_eq!(q[0], 6.0);
            set_pack_cache_cap_bytes(None);
        });
    }

    #[test]
    fn disabled_cache_returns_none() {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _g = LOCK.lock().unwrap();
        set_pack_cache_enabled(Some(false));
        let k = key(41, 0, 16);
        assert!(get_or_pack(k, 64, |_| {}).is_none());
        assert!(get_or_pack(k, 64, |_| {}).is_none());
        set_pack_cache_enabled(None);
    }
}
