//! Per-shape blocking autotuner for the packed kernel.
//!
//! The paper's workloads multiply a handful of fixed shapes (the im2col
//! products in `BENCH_kernels.json`) thousands of times, so it pays to spend
//! a few runs once per shape picking the cache blocking (`mc`/`kc`/`nc`) and
//! register micro-tile, then replay that choice from a profile cache.
//!
//! # Keying and lookup
//!
//! Profiles are keyed by [`ShapeKey`] — `(m, k, n)` plus both operands'
//! layout tags — and by [`DispatchTier`], since the best tile differs per
//! ISA. [`params_for`] resolves, in order:
//!
//! 1. the scalar tier → the pinned [`KernelParams::pinned_scalar`] (never
//!    tuned; it is the bitwise reference and stays byte-stable),
//! 2. a cached profile (in-memory, seeded from `CHIRON_AUTOTUNE_CACHE`
//!    when set),
//! 3. a measured tune (`CHIRON_AUTOTUNE` unset/`1`): run every candidate on
//!    the caller's actual operands, keep the fastest, cache it,
//! 4. otherwise the deterministic [`KernelParams::heuristic`].
//!
//! # Determinism
//!
//! Parameter choice affects **speed only, never bits**: every candidate
//! drives the same canonical per-element fold (see the
//! [`kernel`](crate::kernel) module docs — blocking splits round-trip
//! through C memory, micro-tiles only regroup which elements advance
//! together), so a timing-noise-dependent winner is still bitwise-identical
//! to every loser. Within one process the cache makes the choice stable
//! (cold tune → cached → warm hits return the identical parameters, which
//! the regression test pins); across processes `CHIRON_AUTOTUNE_CACHE`
//! persists the profile for stable replay.

use super::simd::{DispatchTier, MicroTile};
use super::MatView;
use crate::scratch;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Profile-cache key: the problem shape and both operand layouts (packing
/// cost — and therefore the best blocking — depends on how operands are
/// strided, not just on `m·k·n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeKey {
    /// Output rows.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Layout tag of `a`: 0 = row-major, 1 = col-major, 2 = batch-col.
    pub layout_a: u8,
    /// Layout tag of `b` (same encoding).
    pub layout_b: u8,
}

/// One blocking decision: panel sizes plus the register micro-tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// C rows per cache block (`ic` step, parallel grain).
    pub mc: usize,
    /// Packed panel depth (`pc` step).
    pub kc: usize,
    /// C columns per outer panel (`jc` step).
    pub nc: usize,
    /// Register micro-tile.
    pub tile: MicroTile,
}

impl KernelParams {
    /// The pre-SIMD blocked kernel's exact parameters — the pinned scalar
    /// reference configuration (`MC`/`KC`/`NC` module constants, 8×4 tile).
    #[must_use]
    pub const fn pinned_scalar() -> Self {
        Self {
            mc: super::MC,
            kc: super::KC,
            nc: super::NC,
            tile: MicroTile::M8N4,
        }
    }

    /// Deterministic shape-independent default for a tier, used when the
    /// autotuner is disabled or has not yet profiled a shape.
    #[must_use]
    pub fn heuristic(tier: DispatchTier) -> Self {
        match tier {
            DispatchTier::Scalar => Self::pinned_scalar(),
            DispatchTier::Avx2 | DispatchTier::Neon => Self {
                mc: super::MC,
                kc: super::KC,
                nc: super::NC,
                tile: MicroTile::M8N8,
            },
        }
    }

    /// The candidate grid the measured tuner searches for a tier: every
    /// vector micro-tile crossed with two `mc` grains (L1-lean vs
    /// L2-lean packed-A panels). Order is fixed, so ties break
    /// deterministically.
    #[must_use]
    pub fn candidates(tier: DispatchTier) -> Vec<Self> {
        let mut out = Vec::new();
        for &tile in MicroTile::candidates(tier) {
            for mc in [super::MC, 2 * super::MC] {
                out.push(Self {
                    mc,
                    kc: super::KC,
                    nc: super::NC,
                    tile,
                });
            }
        }
        out
    }
}

type ProfileMap = HashMap<(DispatchTier, ShapeKey), KernelParams>;

struct ProfileCache {
    map: ProfileMap,
    /// Whether `CHIRON_AUTOTUNE_CACHE` has been loaded into `map`.
    disk_loaded: bool,
}

fn cache() -> &'static Mutex<ProfileCache> {
    static CACHE: OnceLock<Mutex<ProfileCache>> = OnceLock::new();
    CACHE.get_or_init(|| {
        Mutex::new(ProfileCache {
            map: HashMap::new(),
            disk_loaded: false,
        })
    })
}

fn autotune_enabled() -> bool {
    chiron_telemetry::RuntimeConfig::global().autotune != Some(false)
}

fn cache_path() -> Option<&'static str> {
    chiron_telemetry::RuntimeConfig::global()
        .autotune_cache
        .as_deref()
}

/// Resolves the blocking parameters for one product (see module docs for
/// the resolution order). `a`/`b` are the live operands; a measured tune
/// runs the candidates directly on them.
pub fn params_for(
    tier: DispatchTier,
    key: ShapeKey,
    a: &MatView<'_>,
    b: &MatView<'_>,
) -> KernelParams {
    static AUTOTUNE_HITS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.autotune.hits");
    static AUTOTUNE_TUNES: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.kernel.autotune.tunes");
    if tier == DispatchTier::Scalar {
        return KernelParams::pinned_scalar();
    }
    {
        let mut c = cache().lock().expect("autotune cache poisoned");
        if !c.disk_loaded {
            c.disk_loaded = true;
            if let Some(path) = cache_path() {
                load_disk_cache(path, &mut c.map);
            }
        }
        if let Some(&p) = c.map.get(&(tier, key)) {
            AUTOTUNE_HITS.add(1);
            return p;
        }
    }
    if !autotune_enabled() {
        return KernelParams::heuristic(tier);
    }
    let tuned = tune(tier, key, a, b);
    AUTOTUNE_TUNES.add(1);
    let snapshot = {
        let mut c = cache().lock().expect("autotune cache poisoned");
        c.map.insert((tier, key), tuned);
        cache_path().map(|_| c.map.clone())
    };
    if let (Some(path), Some(map)) = (cache_path(), snapshot) {
        save_disk_cache(path, &map);
    }
    tuned
}

/// The cached profile for `(tier, key)`, if one exists (test/inspection
/// hook; does not trigger tuning or disk loading).
#[must_use]
pub fn cached_params(tier: DispatchTier, key: ShapeKey) -> Option<KernelParams> {
    cache()
        .lock()
        .expect("autotune cache poisoned")
        .map
        .get(&(tier, key))
        .copied()
}

/// Drops every cached profile and forgets the disk cache was loaded
/// (test hook: forces the next [`params_for`] down the cold-tune path).
pub fn reset_profile_cache() {
    let mut c = cache().lock().expect("autotune cache poisoned");
    c.map.clear();
    c.disk_loaded = false;
}

/// Runs every candidate on the live operands and returns the fastest
/// (1 warmup + 2 timed runs each, best-of kept; first-listed wins ties).
fn tune(tier: DispatchTier, key: ShapeKey, a: &MatView<'_>, b: &MatView<'_>) -> KernelParams {
    let mut out = scratch::take_vec(key.m * key.n);
    let mut best: Option<(f64, KernelParams)> = None;
    // Trial runs pack with candidate geometries that mostly lose; strip the
    // cache identity so they are never admitted (and every rep measures an
    // honest pack + compute).
    let b = b.without_key();
    for params in KernelParams::candidates(tier) {
        let mut best_ns = f64::INFINITY;
        for rep in 0..3 {
            out.fill(0.0);
            let t0 = Instant::now();
            super::blocked(
                a,
                &b,
                key.m,
                key.k,
                key.n,
                &mut out,
                tier,
                params,
                super::Epilogue::None,
            );
            let ns = t0.elapsed().as_nanos() as f64;
            if rep > 0 {
                best_ns = best_ns.min(ns); // rep 0 is the warmup
            }
        }
        if best.map(|(t, _)| best_ns < t).unwrap_or(true) {
            best = Some((best_ns, params));
        }
    }
    scratch::recycle(out);
    best.map(|(_, p)| p)
        .unwrap_or_else(|| KernelParams::heuristic(tier))
}

// ---------------------------------------------------------------------------
// Disk persistence (CHIRON_AUTOTUNE_CACHE)
// ---------------------------------------------------------------------------

fn tier_from_name(name: &str) -> Option<DispatchTier> {
    Some(match name {
        "scalar" => DispatchTier::Scalar,
        "avx2" => DispatchTier::Avx2,
        "neon" => DispatchTier::Neon,
        _ => return None,
    })
}

/// Merges profiles from a `CHIRON_AUTOTUNE_CACHE` file into `map`. Each
/// line is `tier m k n layout_a layout_b tile mc kc nc`; malformed lines
/// and unknown names are skipped (a stale cache degrades to re-tuning,
/// never to an error).
fn load_disk_cache(path: &str, map: &mut ProfileMap) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for line in text.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() != 10 || f[0].starts_with('#') {
            continue;
        }
        let (Some(tier), Some(tile)) = (tier_from_name(f[0]), MicroTile::from_name(f[6])) else {
            continue;
        };
        let nums: Option<Vec<usize>> = f[1..6]
            .iter()
            .chain(&f[7..10])
            .map(|s| s.parse().ok())
            .collect();
        let Some(v) = nums else { continue };
        let key = ShapeKey {
            m: v[0],
            k: v[1],
            n: v[2],
            layout_a: v[3] as u8,
            layout_b: v[4] as u8,
        };
        let params = KernelParams {
            tile,
            mc: v[5],
            kc: v[6],
            nc: v[7],
        };
        if params.mc > 0 && params.kc > 0 && params.nc > 0 {
            map.insert((tier, key), params);
        }
    }
}

/// Rewrites the cache file with every profile, sorted for stable diffs.
/// Write failures are ignored — persistence is an accelerator, not a
/// correctness surface.
fn save_disk_cache(path: &str, map: &ProfileMap) {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort_by_key(|&(&(tier, key), _)| (tier.label(), key));
    let mut text = String::from("# chiron autotune profile cache v1\n");
    for (&(tier, key), p) in entries {
        text.push_str(&format!(
            "{} {} {} {} {} {} {} {} {} {}\n",
            tier.label(),
            key.m,
            key.k,
            key.n,
            key.layout_a,
            key.layout_b,
            p.tile.name(),
            p.mc,
            p.kc,
            p.nc
        ));
    }
    let _ = std::fs::write(path, text);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_tier_is_always_pinned() {
        let key = ShapeKey {
            m: 640,
            k: 250,
            n: 20,
            layout_a: 0,
            layout_b: 0,
        };
        let data = vec![0.5f32; 640 * 250];
        let bdata = vec![0.25f32; 250 * 20];
        let a = MatView::row_major(&data, 640, 250);
        let b = MatView::row_major(&bdata, 250, 20);
        let p = params_for(DispatchTier::Scalar, key, &a, &b);
        assert_eq!(p, KernelParams::pinned_scalar());
        assert_eq!(p.tile, MicroTile::M8N4);
    }

    #[test]
    fn candidate_grid_is_nonempty_and_vector_tiled() {
        for tier in [DispatchTier::Avx2, DispatchTier::Neon] {
            let cands = KernelParams::candidates(tier);
            assert!(!cands.is_empty());
            assert!(cands.iter().all(|p| p.tile != MicroTile::M8N4));
        }
    }

    #[test]
    fn disk_cache_round_trips() {
        let dir = std::env::temp_dir().join(format!("chiron-tune-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.txt");
        let key = ShapeKey {
            m: 5760,
            k: 25,
            n: 10,
            layout_a: 0,
            layout_b: 0,
        };
        let params = KernelParams {
            mc: 128,
            kc: 256,
            nc: 512,
            tile: MicroTile::M12N8,
        };
        let mut map = ProfileMap::new();
        map.insert((DispatchTier::Avx2, key), params);
        save_disk_cache(path.to_str().unwrap(), &map);
        let mut back = ProfileMap::new();
        load_disk_cache(path.to_str().unwrap(), &mut back);
        assert_eq!(back.get(&(DispatchTier::Avx2, key)), Some(&params));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_cache_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("chiron-tune-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("profile.txt");
        std::fs::write(
            &path,
            "# comment\nbogus line\navx2 1 2 3 0 0 m99n99 64 256 512\n",
        )
        .unwrap();
        let mut map = ProfileMap::new();
        load_disk_cache(path.to_str().unwrap(), &mut map);
        assert!(map.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
