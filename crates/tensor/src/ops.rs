//! Linear algebra and reduction operations on [`Tensor`].
//!
//! The three matmul variants are thin layout adapters over
//! [`crate::kernel`]: each wraps its operands in the [`MatView`] describing
//! how the data is stored and lets the kernel pick the direct or blocked
//! path — and, on the blocked path, the SIMD dispatch tier and autotuned
//! blocking. All of that dispatch is numerically invisible — see the kernel
//! module docs for the canonical-accumulation-order argument.

use crate::kernel::{matmul_views, matmul_views_ep, Epilogue, MatView};
use crate::{scratch, Tensor};

impl Tensor {
    /// Matrix product `self (m×k) · rhs (k×n) → (m×n)`.
    ///
    /// Both operands are interpreted as matrices via
    /// [`crate::Shape::as_matrix`], so a rank-1 tensor acts as a row vector.
    ///
    /// The B operand carries its [`pack_key`](Tensor::pack_key) so the
    /// blocked kernel may reuse its packed panels across calls: in every
    /// hot product of this codebase the recurring operand (a weight
    /// matrix) sits on the B side.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        matmul_views(
            &MatView::row_major(self.as_slice(), m, k),
            &MatView::row_major(rhs.as_slice(), k2, n).keyed(rhs.pack_key()),
        )
    }

    /// [`matmul`](Tensor::matmul) with the bias row added in the kernel's
    /// output pass: `out[i][j] = (self · rhs)[i][j] + bias[j]`, bitwise
    /// identical to `self.matmul(rhs).add_row_broadcast(bias)` (see
    /// [`Epilogue`]) without the extra whole-matrix traversal and clone.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `bias` is not a rank-1
    /// tensor of length `n`.
    pub fn matmul_bias(&self, rhs: &Tensor, bias: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        assert_eq!(bias.shape().rank(), 1, "matmul_bias: bias must be rank-1");
        matmul_views_ep(
            &MatView::row_major(self.as_slice(), m, k),
            &MatView::row_major(rhs.as_slice(), k2, n).keyed(rhs.pack_key()),
            Epilogue::Bias(bias.as_slice()),
        )
    }

    /// [`matmul_bias`](Tensor::matmul_bias) followed by ReLU, fused:
    /// `out[i][j] = ((self · rhs)[i][j] + bias[j]).max(0.0)` — bitwise
    /// identical to the unfused bias-add then `map(|x| x.max(0.0))`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree or `bias` is not a rank-1
    /// tensor of length `n`.
    pub fn matmul_bias_relu(&self, rhs: &Tensor, bias: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        assert_eq!(
            bias.shape().rank(),
            1,
            "matmul_bias_relu: bias must be rank-1"
        );
        matmul_views_ep(
            &MatView::row_major(self.as_slice(), m, k),
            &MatView::row_major(rhs.as_slice(), k2, n).keyed(rhs.pack_key()),
            Epilogue::BiasRelu(bias.as_slice()),
        )
    }

    /// `selfᵀ (k×m)ᵀ · rhs (k×n) → (m×n)`, i.e. `self` is transposed.
    ///
    /// Used by backprop to form weight gradients (`xᵀ · dy`) without
    /// materializing the transpose.
    ///
    /// # Panics
    ///
    /// Panics if the row counts disagree.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Tensor {
        let (k, m) = self.shape().as_matrix();
        let (k2, n) = rhs.shape().as_matrix();
        matmul_views(
            &MatView::transposed(self.as_slice(), m, k),
            &MatView::row_major(rhs.as_slice(), k2, n).keyed(rhs.pack_key()),
        )
    }

    /// `self (m×k) · rhsᵀ (n×k)ᵀ → (m×n)`, i.e. `rhs` is transposed.
    ///
    /// Used by backprop to propagate input gradients (`dy · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics if the column counts disagree.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Tensor {
        let (m, k) = self.shape().as_matrix();
        let (n, k2) = rhs.shape().as_matrix();
        matmul_views(
            &MatView::row_major(self.as_slice(), m, k),
            &MatView::transposed(rhs.as_slice(), k2, n).keyed(rhs.pack_key()),
        )
    }

    /// Dot product of two equally sized tensors, flattened.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn dot(&self, rhs: &Tensor) -> f32 {
        assert_eq!(
            self.numel(),
            rhs.numel(),
            "dot: element count mismatch {} vs {}",
            self.numel(),
            rhs.numel()
        );
        self.as_slice()
            .iter()
            .zip(rhs.as_slice())
            .map(|(&a, &b)| a * b)
            .sum()
    }

    /// Transpose of a matrix (rank ≤ 2).
    pub fn transpose(&self) -> Tensor {
        let (m, n) = self.shape().as_matrix();
        let a = self.as_slice();
        let mut out = scratch::take_vec(m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = a[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.numel() as f32
    }

    /// Maximum element (NaN-free input assumed).
    pub fn max(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (NaN-free input assumed).
    pub fn min(&self) -> f32 {
        self.as_slice()
            .iter()
            .copied()
            .fold(f32::INFINITY, f32::min)
    }

    /// Sums each row of the matrix view, producing a rank-1 tensor of length
    /// `cols` containing per-column sums (used for bias gradients).
    pub fn sum_rows(&self) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let a = self.as_slice();
        let mut out = scratch::take_vec(cols);
        for r in 0..rows {
            for c in 0..cols {
                out[c] += a[r * cols + c];
            }
        }
        Tensor::from_vec(out, &[cols])
    }

    /// Index of the maximum element along the last axis for each row of the
    /// matrix view. Ties resolve to the lowest index.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (rows, cols) = self.shape().as_matrix();
        let a = self.as_slice();
        (0..rows)
            .map(|r| {
                let row = &a[r * cols..(r + 1) * cols];
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Row-wise softmax of the matrix view, numerically stabilized by
    /// subtracting each row's maximum.
    pub fn softmax_rows(&self) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        let a = self.as_slice();
        let mut out = scratch::take_vec(rows * cols);
        for r in 0..rows {
            let row = &a[r * cols..(r + 1) * cols];
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row) {
                *o = (x - m).exp();
                z += *o;
            }
            for o in &mut out[r * cols..(r + 1) * cols] {
                *o /= z;
            }
        }
        let mut t = Tensor::from_vec(out, &[rows, cols]);
        if self.shape().rank() == 1 {
            t = t.reshape(&[cols]);
        }
        t
    }

    /// Extracts row `r` of the matrix view as a rank-1 tensor.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> Tensor {
        let (rows, cols) = self.shape().as_matrix();
        assert!(r < rows, "row {r} out of range for {rows} rows");
        let mut data = scratch::take_vec_with_capacity(cols);
        data.extend_from_slice(&self.as_slice()[r * cols..(r + 1) * cols]);
        Tensor::from_vec(data, &[cols])
    }

    /// Stacks rank-1 tensors of equal length into a matrix, one per row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or lengths differ.
    pub fn stack_rows(rows: &[Tensor]) -> Tensor {
        assert!(!rows.is_empty(), "stack_rows: empty input");
        let cols = rows[0].numel();
        let mut data = scratch::take_vec_with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.numel(),
                cols,
                "stack_rows: row {i} has {} elements, expected {cols}",
                r.numel()
            );
            data.extend_from_slice(r.as_slice());
        }
        Tensor::from_vec(data, &[rows.len(), cols])
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_tn = a.matmul_tn(&b);
        let explicit = a.transpose().matmul(&b);
        assert_eq!(via_tn.as_slice(), explicit.as_slice());
        assert_eq!(via_tn.dims(), &[2, 2]);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[3, 2]);
        let via_nt = a.matmul_nt(&b);
        let explicit = a.matmul(&b.transpose());
        assert_eq!(via_nt.as_slice(), explicit.as_slice());
        assert_eq!(via_nt.dims(), &[2, 3]);
    }

    #[test]
    fn rank1_acts_as_row_vector() {
        let v = t(&[1.0, 2.0], &[2]);
        let m = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let out = v.matmul(&m);
        assert_eq!(out.dims(), &[1, 2]);
        assert_eq!(out.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let x = t(&[1.0, -2.0, 3.0, 0.0], &[2, 2]);
        assert_eq!(x.sum(), 2.0);
        assert_eq!(x.mean(), 0.5);
        assert_eq!(x.max(), 3.0);
        assert_eq!(x.min(), -2.0);
    }

    #[test]
    fn sum_rows_gives_column_sums() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_rows().as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let x = t(&[1.0, 3.0, 3.0, 0.1, 0.1, 0.2], &[2, 3]);
        assert_eq!(x.argmax_rows(), vec![1, 2]);
    }

    #[test]
    fn softmax_rows_is_normalized_and_stable() {
        let x = t(&[1000.0, 1000.0, 0.0, 1.0], &[2, 2]);
        let s = x.softmax_rows();
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        let row1: f32 = s.as_slice()[2..].iter().sum();
        assert!((row1 - 1.0).abs() < 1e-6);
        assert!(s.as_slice()[3] > s.as_slice()[2]);
    }

    #[test]
    fn dot_and_transpose() {
        let a = t(&[1.0, 2.0, 3.0], &[3]);
        let b = t(&[4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
        let m = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let mt = m.transpose();
        assert_eq!(mt.dims(), &[3, 2]);
        assert_eq!(mt.as_slice(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
    }

    #[test]
    fn stack_and_row_round_trip() {
        let rows = vec![t(&[1.0, 2.0], &[2]), t(&[3.0, 4.0], &[2])];
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.dims(), &[2, 2]);
        assert_eq!(m.row(1).as_slice(), &[3.0, 4.0]);
    }

    #[test]
    fn clamp_bounds_values() {
        let x = t(&[-2.0, 0.5, 9.0], &[3]);
        assert_eq!(x.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "inner dims mismatch")]
    fn matmul_checks_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn fused_bias_and_relu_match_unfused_bitwise() {
        use crate::{Init, TensorRng};
        let mut rng = TensorRng::seed_from(11);
        // Small (direct path) and large (blocked path) shapes.
        for (m, k, n) in [(3, 4, 5), (70, 90, 110)] {
            let x = rng.init(&[m, k], Init::Normal(1.0));
            let w = rng.init(&[k, n], Init::Normal(1.0));
            let b = rng.init(&[n], Init::Normal(1.0));
            let unfused_bias = x.matmul(&w).add_row_broadcast(&b);
            let fused_bias = x.matmul_bias(&w, &b);
            let bits = |t: &Tensor| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&unfused_bias), bits(&fused_bias), "{m}x{k}x{n}");
            let unfused_relu = unfused_bias.map(|v| v.max(0.0));
            let fused_relu = x.matmul_bias_relu(&w, &b);
            assert_eq!(bits(&unfused_relu), bits(&fused_relu), "{m}x{k}x{n}");
        }
        // NaN payloads flow identically: NaN.max(0.0) is 0.0 either way.
        let x = t(&[f32::NAN, 1.0], &[1, 2]);
        let w = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let b = t(&[0.5, 0.5], &[2]);
        let unfused = x.matmul(&w).add_row_broadcast(&b).map(|v| v.max(0.0));
        let fused = x.matmul_bias_relu(&w, &b);
        assert_eq!(
            unfused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            fused
                .as_slice()
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn matmuls_are_bitwise_identical_across_thread_counts() {
        use crate::{pool, Init, TensorRng};
        // Big enough to clear the parallel threshold on every variant.
        let mut rng = TensorRng::seed_from(7);
        let a = rng.init(&[96, 80], Init::Normal(1.0));
        let b = rng.init(&[80, 64], Init::Normal(1.0));
        let bt = b.transpose();
        let run = |threads: usize| {
            pool::set_threads(threads);
            (a.matmul(&b), a.transpose().matmul_tn(&b), a.matmul_nt(&bt))
        };
        let (s1, s2, s3) = run(1);
        let (p1, p2, p3) = run(4);
        pool::set_threads(1);
        assert_eq!(s1.as_slice(), p1.as_slice(), "matmul");
        assert_eq!(s2.as_slice(), p2.as_slice(), "matmul_tn");
        assert_eq!(s3.as_slice(), p3.as_slice(), "matmul_nt");
        // And the parallel path agrees with the reference computation.
        assert_eq!(s2.as_slice(), s1.as_slice(), "tn reference");
    }
}
