//! Tensor shapes: dimension lists with row-major stride computation.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are stored densely and interpreted row-major (C order), i.e. the
/// last dimension is contiguous in memory. A zero-dimensional shape denotes
/// a scalar with one element.
///
/// # Examples
///
/// ```
/// use chiron_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a dimension list.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; empty tensors are not supported.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape dimensions must be positive, got {dims:?}"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// The number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or any coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(&self.dims).enumerate() {
            assert!(i < d, "index {i} out of range for axis {axis} (size {d})");
            off += i * strides[axis];
        }
        off
    }

    /// Returns `true` if `other` has the same dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }

    /// Interprets this shape as a 2-D matrix `(rows, cols)`.
    ///
    /// Rank-1 shapes are treated as a single row; higher ranks collapse all
    /// leading dimensions into the row count.
    pub fn as_matrix(&self) -> (usize, usize) {
        match self.dims.len() {
            0 => (1, 1),
            1 => (1, self.dims[0]),
            _ => {
                let cols = *self.dims.last().expect("non-empty dims");
                (self.numel() / cols, cols)
            }
        }
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn offset_maps_last_axis_contiguously() {
        let s = Shape::new(&[2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.as_matrix(), (1, 1));
    }

    #[test]
    fn as_matrix_collapses_leading_dims() {
        assert_eq!(Shape::new(&[5]).as_matrix(), (1, 5));
        assert_eq!(Shape::new(&[4, 5]).as_matrix(), (4, 5));
        assert_eq!(Shape::new(&[2, 3, 5]).as_matrix(), (6, 5));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dim_rejected() {
        let _ = Shape::new(&[2, 0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn offset_bounds_checked() {
        let s = Shape::new(&[2, 3]);
        let _ = s.offset(&[0, 3]);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_rank_checked() {
        let s = Shape::new(&[2, 3]);
        let _ = s.offset(&[0]);
    }
}
