//! `im2col`/`col2im` layout transforms for convolution layers.
//!
//! A 2-D convolution over an `(N, C, H, W)` batch with `K` output channels
//! and `R×S` kernels is computed by unrolling every receptive field into a
//! row ("im2col"), so the convolution becomes a single matrix product with
//! the `(C·R·S, K)` filter matrix. `col2im` is the exact adjoint, scattering
//! gradients back into image layout; together they make conv backprop a pair
//! of matmuls.

use crate::{pool, scratch, Tensor};

/// Unrolled rows per parallel `im2col` block. Fixed by the problem size so
/// the partitioning is identical for every thread count.
const IM2COL_ROWS_PER_BLOCK: usize = 64;

/// Minimum output elements before the layout transforms dispatch to the
/// pool; below this the fan-out overhead dominates. A performance gate
/// only — each element is produced by the same copy either way.
const PARALLEL_ELEMS_THRESHOLD: usize = 1 << 16;

/// Fills one unrolled receptive-field row (global row index `row`) of the
/// im2col matrix. Shared by the serial and parallel paths, so both produce
/// identical bytes.
#[inline]
#[allow(clippy::too_many_arguments)]
fn im2col_row(
    x: &[f32],
    row: usize,
    c: usize,
    h: usize,
    w: usize,
    geo: &Conv2dGeometry,
    dst: &mut [f32],
) {
    let positions = geo.out_positions();
    let img = row / positions;
    let rem = row % positions;
    let oy = rem / geo.out_w;
    let ox = rem % geo.out_w;
    let img_off = img * c * h * w;
    let iy0 = (oy * geo.stride) as isize - geo.pad as isize;
    let ix0 = (ox * geo.stride) as isize - geo.pad as isize;
    let k_w = geo.k_w;
    // Bounds depend only on (oy, ox, ky), so hoist them out of the
    // per-element loop: an interior window (the only kind when pad = 0)
    // copies each kernel row as one contiguous k_w-length slice. Padded
    // positions stay at the buffer's zero fill, exactly as the
    // element-at-a-time path left them.
    let full_x = ix0 >= 0 && ix0 as usize + k_w <= w;
    let mut idx = 0usize;
    for ch in 0..c {
        let ch_off = img_off + ch * h * w;
        for ky in 0..geo.k_h {
            let iy = iy0 + ky as isize;
            if iy < 0 || (iy as usize) >= h {
                idx += k_w;
                continue;
            }
            let src_row = ch_off + iy as usize * w;
            if full_x {
                let s = src_row + ix0 as usize;
                dst[idx..idx + k_w].copy_from_slice(&x[s..s + k_w]);
                idx += k_w;
            } else {
                for kx in 0..k_w {
                    let ix = ix0 + kx as isize;
                    if ix >= 0 && (ix as usize) < w {
                        dst[idx] = x[src_row + ix as usize];
                    }
                    idx += 1;
                }
            }
        }
    }
}

/// Scatter-adds every unrolled row belonging to image `img` back into that
/// image's `(C, H, W)` slab. Rows are visited in ascending order — the same
/// accumulation order the image sees on the serial path.
fn col2im_image(src: &[f32], img: usize, channels: usize, geo: &Conv2dGeometry, slab: &mut [f32]) {
    let (h, w) = (geo.in_h, geo.in_w);
    let row_len = channels * geo.k_h * geo.k_w;
    let positions = geo.out_positions();
    let k_w = geo.k_w;
    for p in 0..positions {
        let row = img * positions + p;
        let oy = p / geo.out_w;
        let ox = p % geo.out_w;
        let iy0 = (oy * geo.stride) as isize - geo.pad as isize;
        let ix0 = (ox * geo.stride) as isize - geo.pad as isize;
        // Same bounds hoisting as `im2col_row`: interior windows add each
        // kernel row as one contiguous run, in the identical ascending
        // (p, ch, ky, kx) order, so every slab element accumulates its
        // terms in the same sequence as the element-at-a-time loop.
        let full_x = ix0 >= 0 && ix0 as usize + k_w <= w;
        let mut idx = row * row_len;
        for ch in 0..channels {
            let ch_off = ch * h * w;
            for ky in 0..geo.k_h {
                let iy = iy0 + ky as isize;
                if iy < 0 || (iy as usize) >= h {
                    idx += k_w;
                    continue;
                }
                let dst_row = ch_off + iy as usize * w;
                if full_x {
                    let d = dst_row + ix0 as usize;
                    for (o, s) in slab[d..d + k_w].iter_mut().zip(&src[idx..idx + k_w]) {
                        *o += s;
                    }
                    idx += k_w;
                } else {
                    for kx in 0..k_w {
                        let ix = ix0 + kx as isize;
                        if ix >= 0 && (ix as usize) < w {
                            slab[dst_row + ix as usize] += src[idx];
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
}

/// Static geometry of a conv/pool window: input size, kernel, stride,
/// padding, and the derived output size.
///
/// # Examples
///
/// ```
/// use chiron_tensor::Conv2dGeometry;
///
/// // The paper's MNIST CNN first layer: 28×28 input, 5×5 kernel, stride 1.
/// let g = Conv2dGeometry::new(28, 28, 5, 5, 1, 0);
/// assert_eq!((g.out_h, g.out_w), (24, 24));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Kernel height.
    pub k_h: usize,
    /// Kernel width.
    pub k_w: usize,
    /// Stride (same for both axes).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

impl Conv2dGeometry {
    /// Computes output dimensions from the window parameters.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (plus padding) does not fit in the input or the
    /// stride is zero.
    pub fn new(
        in_h: usize,
        in_w: usize,
        k_h: usize,
        k_w: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_h + 2 * pad >= k_h && in_w + 2 * pad >= k_w,
            "kernel {k_h}x{k_w} larger than padded input {}x{}",
            in_h + 2 * pad,
            in_w + 2 * pad
        );
        let out_h = (in_h + 2 * pad - k_h) / stride + 1;
        let out_w = (in_w + 2 * pad - k_w) / stride + 1;
        Self {
            in_h,
            in_w,
            k_h,
            k_w,
            stride,
            pad,
            out_h,
            out_w,
        }
    }

    /// Number of output spatial positions.
    pub fn out_positions(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Unrolls a `(N, C, H, W)` batch into a `(N·out_h·out_w, C·k_h·k_w)` matrix
/// where each row is one receptive field.
///
/// # Panics
///
/// Panics if `input` is not rank-4 or its spatial dims disagree with `geo`.
pub fn im2col(input: &Tensor, channels: usize, geo: &Conv2dGeometry) -> Tensor {
    let dims = input.dims();
    assert_eq!(dims.len(), 4, "im2col expects (N, C, H, W), got {:?}", dims);
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    assert_eq!(c, channels, "channel mismatch");
    assert_eq!((h, w), (geo.in_h, geo.in_w), "spatial dims mismatch");

    let row_len = c * geo.k_h * geo.k_w;
    let rows = n * geo.out_positions();
    let x = input.as_slice();
    let mut out = scratch::take_vec(rows * row_len);

    // Every unrolled row is an independent gather, so rows partition freely
    // over fixed-size blocks; the per-row copy is shared with the serial
    // path, making the two bitwise identical.
    if rows * row_len >= PARALLEL_ELEMS_THRESHOLD
        && rows > IM2COL_ROWS_PER_BLOCK
        && pool::threads() > 1
    {
        pool::parallel_chunks_mut(&mut out, IM2COL_ROWS_PER_BLOCK * row_len, |block, chunk| {
            let row0 = block * IM2COL_ROWS_PER_BLOCK;
            for (r, dst) in chunk.chunks_mut(row_len).enumerate() {
                im2col_row(x, row0 + r, c, h, w, geo, dst);
            }
        });
    } else {
        for (row, dst) in out.chunks_mut(row_len).enumerate() {
            im2col_row(x, row, c, h, w, geo, dst);
        }
    }
    Tensor::from_vec(out, &[rows, row_len])
}

/// Scatter-adds a `(N·out_h·out_w, C·k_h·k_w)` column matrix back into image
/// layout `(N, C, H, W)` — the adjoint of [`im2col`], used for input
/// gradients.
///
/// # Panics
///
/// Panics if `cols` does not have the shape [`im2col`] would produce for
/// `(n, channels, geo)`.
pub fn col2im(cols: &Tensor, n: usize, channels: usize, geo: &Conv2dGeometry) -> Tensor {
    let row_len = channels * geo.k_h * geo.k_w;
    let rows = n * geo.out_positions();
    assert_eq!(
        cols.dims(),
        &[rows, row_len],
        "col2im: expected ({rows}, {row_len}), got {:?}",
        cols.dims()
    );
    let (h, w) = (geo.in_h, geo.in_w);
    let src = cols.as_slice();
    let mut out = scratch::take_vec(n * channels * h * w);

    // Overlapping windows scatter-add into the image, so the partition is
    // per image: rows of different images write disjoint slabs, and within
    // an image the rows accumulate in the same ascending order the serial
    // path uses — bitwise identical for every thread count.
    let slab = channels * h * w;
    if n > 1 && n * slab >= PARALLEL_ELEMS_THRESHOLD && pool::threads() > 1 {
        pool::parallel_chunks_mut(&mut out, slab, |img, chunk| {
            col2im_image(src, img, channels, geo, chunk);
        });
    } else {
        for (img, chunk) in out.chunks_mut(slab).enumerate() {
            col2im_image(src, img, channels, geo, chunk);
        }
    }
    Tensor::from_vec(out, &[n, channels, h, w])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper_layers() {
        // MNIST CNN: conv1 28→24, pool →12, conv2 12→8, pool →4.
        let c1 = Conv2dGeometry::new(28, 28, 5, 5, 1, 0);
        assert_eq!((c1.out_h, c1.out_w), (24, 24));
        let c2 = Conv2dGeometry::new(12, 12, 5, 5, 1, 0);
        assert_eq!((c2.out_h, c2.out_w), (8, 8));
        // LeNet on CIFAR: conv1 32→28, pool →14, conv2 14→10, pool →5.
        let l1 = Conv2dGeometry::new(32, 32, 5, 5, 1, 0);
        assert_eq!((l1.out_h, l1.out_w), (28, 28));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1: im2col is a pure reshape.
        let x = Tensor::linspace(0.0, 3.0, 4).reshape(&[1, 1, 2, 2]);
        let geo = Conv2dGeometry::new(2, 2, 1, 1, 1, 0);
        let cols = im2col(&x, 1, &geo);
        assert_eq!(cols.dims(), &[4, 1]);
        assert_eq!(cols.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_extracts_receptive_fields() {
        // 3x3 single-channel image, 2x2 kernel → 4 rows of 4.
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 1, 3, 3],
        );
        let geo = Conv2dGeometry::new(3, 3, 2, 2, 1, 0);
        let cols = im2col(&x, 1, &geo);
        assert_eq!(cols.dims(), &[4, 4]);
        assert_eq!(cols.row(0).as_slice(), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(cols.row(3).as_slice(), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn padding_inserts_zeros() {
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let geo = Conv2dGeometry::new(2, 2, 2, 2, 1, 1);
        assert_eq!((geo.out_h, geo.out_w), (3, 3));
        let cols = im2col(&x, 1, &geo);
        // Top-left window overlaps three padded zeros and one real pixel.
        assert_eq!(cols.row(0).as_slice(), &[0.0, 0.0, 0.0, 1.0]);
        // Center window covers the full image.
        assert_eq!(cols.row(4).as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint property
        // that makes conv backprop correct.
        use crate::{Init, TensorRng};
        let mut rng = TensorRng::seed_from(13);
        let x = rng.init(&[2, 3, 5, 5], Init::Normal(1.0));
        let geo = Conv2dGeometry::new(5, 5, 3, 3, 2, 1);
        let cols = im2col(&x, 3, &geo);
        let y = rng.init(cols.dims(), Init::Normal(1.0));
        let lhs = cols.dot(&y);
        let back = col2im(&y, 2, 3, &geo);
        let rhs = x.dot(&back);
        assert!(
            (lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn multichannel_rows_are_channel_major() {
        let mut data = vec![0.0; 2 * 4];
        for (i, v) in data.iter_mut().enumerate() {
            *v = i as f32;
        }
        let x = Tensor::from_vec(data, &[1, 2, 2, 2]);
        let geo = Conv2dGeometry::new(2, 2, 2, 2, 1, 0);
        let cols = im2col(&x, 2, &geo);
        assert_eq!(cols.dims(), &[1, 8]);
        // Channel 0 patch then channel 1 patch.
        assert_eq!(cols.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_rejected() {
        let _ = Conv2dGeometry::new(2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn layout_transforms_bitwise_identical_across_thread_counts() {
        use crate::{pool, Init, TensorRng};
        // A batch big enough to clear the parallel thresholds
        // (10×3×28×28 → 10·24·24 = 5760 im2col rows of 75).
        let mut rng = TensorRng::seed_from(21);
        let x = rng.init(&[10, 3, 28, 28], Init::Normal(1.0));
        let geo = Conv2dGeometry::new(28, 28, 5, 5, 1, 1);
        let run = |threads: usize| {
            pool::set_threads(threads);
            let cols = im2col(&x, 3, &geo);
            let back = col2im(&cols, 10, 3, &geo);
            (cols, back)
        };
        let (sc, sb) = run(1);
        let (pc, pb) = run(4);
        pool::set_threads(1);
        assert_eq!(sc.as_slice(), pc.as_slice(), "im2col");
        assert_eq!(sb.as_slice(), pb.as_slice(), "col2im");
    }
}
