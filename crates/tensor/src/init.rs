//! Seeded random tensor initialization.

use crate::Tensor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use rand_distr::{Distribution, Normal, Uniform};
use serde::{Deserialize, Serialize};

/// A deterministic random number generator for tensor initialization and
/// sampling.
///
/// Wraps `ChaCha12Rng` so that every experiment in the reproduction is
/// seedable and bit-for-bit repeatable across platforms.
///
/// # Examples
///
/// ```
/// use chiron_tensor::{Init, TensorRng};
///
/// let mut rng = TensorRng::seed_from(42);
/// let w = rng.init(&[4, 4], Init::XavierUniform);
/// assert_eq!(w.numel(), 16);
/// assert!(w.as_slice().iter().all(|x| x.abs() <= 1.0));
/// ```
#[derive(Clone)]
pub struct TensorRng {
    rng: ChaCha12Rng,
}

/// Serializable snapshot of a [`TensorRng`]'s exact stream position.
///
/// Captured with [`TensorRng::state`] and rebuilt with
/// [`TensorRng::from_state`], so a checkpointed run resumes the stream
/// bit-for-bit. The word arrays are stored as `Vec<u32>` to keep the JSON
/// encoding simple; [`TensorRng::from_state`] validates the lengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// ChaCha cipher state (16 words: constants, key, counter, nonce).
    pub state: Vec<u32>,
    /// Current keystream block (16 words).
    pub block: Vec<u32>,
    /// Next unserved word within the block; 16 means "exhausted".
    pub index: u8,
}

/// Weight-initialization schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (biases).
    Zeros,
    /// Constant value.
    Constant(f32),
    /// Uniform on `[lo, hi)`.
    Uniform(f32, f32),
    /// Normal with mean 0 and the given standard deviation.
    Normal(f32),
    /// Xavier/Glorot uniform: `U(±sqrt(6/(fan_in+fan_out)))`, suited to
    /// tanh networks (the DRL policy nets).
    XavierUniform,
    /// He/Kaiming normal: `N(0, sqrt(2/fan_in))`, suited to ReLU networks
    /// (the paper's CNNs).
    HeNormal,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            rng: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each layer or
    /// each edge node its own stream so adding components never perturbs
    /// existing ones.
    pub fn fork(&mut self) -> Self {
        Self {
            rng: ChaCha12Rng::seed_from_u64(self.rng.gen()),
        }
    }

    /// Samples a tensor of the given shape under the chosen scheme.
    ///
    /// For the fan-based schemes the shape is interpreted as a matrix via
    /// [`crate::Shape::as_matrix`]: `fan_in` is the row count and `fan_out`
    /// the column count, matching a `(in, out)` weight layout.
    pub fn init(&mut self, dims: &[usize], scheme: Init) -> Tensor {
        let t = Tensor::zeros(dims);
        let (fan_in, fan_out) = t.shape().as_matrix();
        let n = t.numel();
        let data: Vec<f32> = match scheme {
            Init::Zeros => vec![0.0; n],
            Init::Constant(c) => vec![c; n],
            Init::Uniform(lo, hi) => {
                let d = Uniform::new(lo, hi);
                (0..n).map(|_| d.sample(&mut self.rng)).collect()
            }
            Init::Normal(std) => {
                let d = Normal::new(0.0, std as f64).expect("std must be finite");
                (0..n).map(|_| d.sample(&mut self.rng) as f32).collect()
            }
            Init::XavierUniform => {
                let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
                let d = Uniform::new(-bound, bound);
                (0..n).map(|_| d.sample(&mut self.rng)).collect()
            }
            Init::HeNormal => {
                let std = (2.0 / fan_in as f64).sqrt();
                let d = Normal::new(0.0, std).expect("std must be finite");
                (0..n).map(|_| d.sample(&mut self.rng) as f32).collect()
            }
        };
        Tensor::from_vec(data, dims)
    }

    /// Samples a single standard-normal value.
    pub fn normal(&mut self) -> f64 {
        Normal::new(0.0, 1.0).expect("valid").sample(&mut self.rng)
    }

    /// Samples uniformly from `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// Samples a uniform integer in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// Exposes the inner RNG for distribution sampling by other crates.
    pub fn inner(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }

    /// Snapshots the exact stream position for checkpointing.
    pub fn state(&self) -> RngState {
        let (state, block, index) = self.rng.raw_state();
        RngState {
            state: state.to_vec(),
            block: block.to_vec(),
            index,
        }
    }

    /// Rebuilds a generator from a snapshot taken by [`TensorRng::state`].
    ///
    /// Returns `None` if the snapshot's word arrays do not have exactly 16
    /// entries (a corrupted or hand-edited checkpoint) — callers map this to
    /// their own typed error instead of panicking.
    pub fn from_state(snapshot: &RngState) -> Option<Self> {
        let state: [u32; 16] = snapshot.state.as_slice().try_into().ok()?;
        let block: [u32; 16] = snapshot.block.as_slice().try_into().ok()?;
        Some(Self {
            rng: ChaCha12Rng::from_raw_state(state, block, snapshot.index),
        })
    }
}

impl std::fmt::Debug for TensorRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TensorRng").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        let ta = a.init(&[3, 3], Init::Normal(1.0));
        let tb = b.init(&[3, 3], Init::Normal(1.0));
        assert_eq!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = TensorRng::seed_from(1);
        let mut b = TensorRng::seed_from(2);
        let ta = a.init(&[8], Init::Uniform(0.0, 1.0));
        let tb = b.init(&[8], Init::Uniform(0.0, 1.0));
        assert_ne!(ta.as_slice(), tb.as_slice());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = TensorRng::seed_from(3);
        let w = rng.init(&[10, 10], Init::XavierUniform);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= bound));
    }

    #[test]
    fn he_normal_has_plausible_scale() {
        let mut rng = TensorRng::seed_from(4);
        let w = rng.init(&[100, 100], Init::HeNormal);
        let var = w.as_slice().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        let expected = 2.0 / 100.0;
        assert!((var - expected).abs() < expected * 0.3, "var {var}");
    }

    #[test]
    fn constant_and_zero_schemes() {
        let mut rng = TensorRng::seed_from(5);
        assert_eq!(rng.init(&[2], Init::Zeros).as_slice(), &[0.0, 0.0]);
        assert_eq!(rng.init(&[2], Init::Constant(0.5)).as_slice(), &[0.5, 0.5]);
    }

    #[test]
    fn fork_decouples_streams() {
        let mut parent = TensorRng::seed_from(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        let a = c1.init(&[4], Init::Normal(1.0));
        let b = c2.init(&[4], Init::Normal(1.0));
        assert_ne!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn state_round_trips_through_serde() {
        let mut a = TensorRng::seed_from(13);
        // Advance so the snapshot captures a mid-stream position.
        for _ in 0..7 {
            let _ = a.normal();
        }
        let json = serde_json::to_string(&a.state()).expect("serialize");
        let snapshot: RngState = serde_json::from_str(&json).expect("deserialize");
        let mut b = TensorRng::from_state(&snapshot).expect("valid snapshot");
        for _ in 0..32 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.uniform(0.0, 1.0).to_bits(), b.uniform(0.0, 1.0).to_bits());
        }
    }

    #[test]
    fn from_state_rejects_wrong_lengths() {
        let mut snapshot = TensorRng::seed_from(1).state();
        snapshot.block.pop();
        assert!(TensorRng::from_state(&snapshot).is_none());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(11);
        let mut xs: Vec<usize> = (0..20).collect();
        rng.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }
}
