//! Property-based tests for tensor algebra invariants.

use crate::{
    col2im, detect, im2col, matmul_into_with, Conv2dGeometry, DispatchTier, Init, KernelParams,
    MatView, MicroTile, Tensor, TensorRng,
};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| (m, n, v))
    })
}

/// Reference matmul in the canonical accumulation order: one `f32`
/// accumulator per output element, ascending `k`. The kernel must match
/// this bitwise on every dispatch path (see `kernel` module docs).
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_identity_is_noop((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let i = Tensor::eye(n);
        let out = a.matmul(&i);
        for (x, y) in a.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let tt = a.transpose().transpose();
        prop_assert_eq!(a.as_slice(), tt.as_slice());
        prop_assert_eq!(a.dims(), tt.dims());
    }

    #[test]
    fn matmul_tn_matches_naive((m, n, data) in small_matrix(), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[m, n]);
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.init(&[m, 3], Init::Normal(1.0));
        let fast = a.matmul_tn(&b);
        let naive = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_naive((m, n, data) in small_matrix(), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[m, n]);
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.init(&[4, n], Init::Normal(1.0));
        let fast = a.matmul_nt(&b);
        let naive = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let s = a.softmax_rows();
        for r in 0..m {
            let row_sum: f32 = s.as_slice()[r * n..(r + 1) * n].iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-5);
            prop_assert!(s.as_slice()[r * n..(r + 1) * n].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sum_rows_matches_total((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let col_sums = a.sum_rows();
        prop_assert!((col_sums.sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..500,
        h in 3usize..8,
        w in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.init(&[1, 2, h, w], Init::Normal(1.0));
        let geo = Conv2dGeometry::new(h, w, k, k, stride, pad);
        let cols = im2col(&x, 2, &geo);
        let y = rng.init(cols.dims(), Init::Normal(1.0));
        let lhs = cols.dot(&y) as f64;
        let rhs = x.dot(&col2im(&y, 1, 2, &geo)) as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn clamp_respects_bounds(data in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let c = t.clamp(-1.0, 1.0);
        prop_assert!(c.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn direct_matmul_matches_naive_exactly(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000,
    ) {
        // m·k·n < 2^18, so this stays on the direct path; shapes cover
        // everything non-divisible by MR=8 / NR=4.
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a.matmul(&b);
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }
}

// Larger shapes that cross BLOCKED_FLOP_THRESHOLD (2^18 flops) and so take
// the packed, cache-blocked kernel. Fewer cases — each one is a real GEMM.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn blocked_matmul_matches_naive_exactly(
        m in 64usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
    ) {
        // m·k·n ≥ 64·240·33 > 2^18 → blocked path; k straddles KC=256 so
        // some shapes accumulate a C tile across two packed panels, and the
        // ranges are chosen to never divide MR/NR/MC evenly for all cases.
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a.matmul(&b);
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }

    #[test]
    fn blocked_tn_matches_naive_exactly(
        m in 100usize..130, k in 64usize..90, n in 45usize..60, seed in 0u64..1000,
    ) {
        // Exercises the ColMajor packing specialization on the blocked path.
        let mut rng = TensorRng::seed_from(seed);
        let a_t = rng.init(&[k, m], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a_t.matmul_tn(&b);
        let a = a_t.transpose();
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }

    /// Every vector micro-tile must reproduce the pinned scalar kernel
    /// bitwise on the blocked path — including on signed zeros, subnormals,
    /// and NaNs sprinkled through both operands (the packed path has no
    /// zero-skip, so NaN terms flow through every tier identically).
    #[test]
    fn vector_tiers_match_pinned_scalar_bitwise(
        m in 64usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
        picks in proptest::collection::vec((0usize..1 << 16, 0usize..16), 0..12),
    ) {
        const EDGE: [f32; 8] = [
            0.0,
            -0.0,
            f32::NAN,
            f32::MIN_POSITIVE,      // smallest normal
            1.0e-40,                // subnormal
            -1.0e-44,               // subnormal, negative
            3.0e38,                 // near f32::MAX — products overflow to inf
            -7.25,
        ];
        let tier = detect();
        prop_assume!(tier != DispatchTier::Scalar);
        let mut rng = TensorRng::seed_from(seed);
        let mut a = rng.init(&[m, k], Init::Normal(1.0)).as_slice().to_vec();
        let mut b = rng.init(&[k, n], Init::Normal(1.0)).as_slice().to_vec();
        let (alen, blen) = (a.len(), b.len());
        for &(pos, val) in &picks {
            a[pos % alen] = EDGE[val % EDGE.len()];
            b[(pos / 7) % blen] = EDGE[(val + 3) % EDGE.len()];
        }
        let av = MatView::row_major(&a, m, k);
        let bv = MatView::row_major(&b, k, n);
        let mut scalar = vec![0.0f32; m * n];
        matmul_into_with(
            &av, &bv, &mut scalar, DispatchTier::Scalar, KernelParams::pinned_scalar(),
        );
        let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
        for &tile in MicroTile::candidates(tier) {
            let params = KernelParams { mc: 64, kc: 256, nc: 512, tile };
            let mut out = vec![0.0f32; m * n];
            matmul_into_with(&av, &bv, &mut out, tier, params);
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&sb, &ob, "tile {:?} diverged from pinned scalar", tile);
        }
    }

    /// Tier equality on the non-row-major operand layouts: a transposed
    /// (ColMajor) A against a conv-gradient-style BatchCol B, both packed
    /// through their specialized paths.
    #[test]
    fn vector_tiers_match_scalar_on_all_layouts(
        m in 100usize..130, half in 32usize..45, n in 45usize..60, seed in 0u64..1000,
    ) {
        let tier = detect();
        prop_assume!(tier != DispatchTier::Scalar);
        let k = 2 * half; // batch=2, positions=half → k rows
        let mut rng = TensorRng::seed_from(seed);
        let a_t = rng.init(&[k, m], Init::Normal(1.0));
        let b_nchw = rng.init(&[2, n, half], Init::Normal(1.0));
        let av = MatView::transposed(a_t.as_slice(), m, k);
        let bv = MatView::batch_transposed(b_nchw.as_slice(), 2, n, half);
        let mut scalar = vec![0.0f32; m * n];
        matmul_into_with(
            &av, &bv, &mut scalar, DispatchTier::Scalar, KernelParams::pinned_scalar(),
        );
        let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
        for &tile in MicroTile::candidates(tier) {
            let params = KernelParams { mc: 64, kc: 256, nc: 512, tile };
            let mut out = vec![0.0f32; m * n];
            matmul_into_with(&av, &bv, &mut out, tier, params);
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&sb, &ob, "tile {:?} diverged on ColMajor×BatchCol", tile);
        }
    }

    #[test]
    fn blocked_nt_matches_naive_exactly(
        m in 100usize..130, k in 64usize..90, n in 45usize..60, seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b_t = rng.init(&[n, k], Init::Normal(1.0));
        let fast = a.matmul_nt(&b_t);
        let b = b_t.transpose();
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }
}
