//! Property-based tests for tensor algebra invariants.

use crate::{
    col2im, detect, im2col, matmul_into_with, Conv2dGeometry, DispatchTier, Init, KernelParams,
    MatView, MicroTile, Tensor, TensorRng,
};
use proptest::prelude::*;

fn small_matrix() -> impl Strategy<Value = (usize, usize, Vec<f32>)> {
    (1usize..6, 1usize..6).prop_flat_map(|(m, n)| {
        proptest::collection::vec(-10.0f32..10.0, m * n).prop_map(move |v| (m, n, v))
    })
}

/// Reference matmul in the canonical accumulation order: one `f32`
/// accumulator per output element, ascending `k`. The kernel must match
/// this bitwise on every dispatch path (see `kernel` module docs).
fn naive_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    out
}

proptest! {
    #[test]
    fn matmul_identity_is_noop((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let i = Tensor::eye(n);
        let out = a.matmul(&i);
        for (x, y) in a.as_slice().iter().zip(out.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let tt = a.transpose().transpose();
        prop_assert_eq!(a.as_slice(), tt.as_slice());
        prop_assert_eq!(a.dims(), tt.dims());
    }

    #[test]
    fn matmul_tn_matches_naive((m, n, data) in small_matrix(), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[m, n]);
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.init(&[m, 3], Init::Normal(1.0));
        let fast = a.matmul_tn(&b);
        let naive = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn matmul_nt_matches_naive((m, n, data) in small_matrix(), seed in 0u64..1000) {
        let a = Tensor::from_vec(data, &[m, n]);
        let mut rng = TensorRng::seed_from(seed);
        let b = rng.init(&[4, n], Init::Normal(1.0));
        let fast = a.matmul_nt(&b);
        let naive = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(naive.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let s = a.softmax_rows();
        for r in 0..m {
            let row_sum: f32 = s.as_slice()[r * n..(r + 1) * n].iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-5);
            prop_assert!(s.as_slice()[r * n..(r + 1) * n].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn sum_rows_matches_total((m, n, data) in small_matrix()) {
        let a = Tensor::from_vec(data, &[m, n]);
        let col_sums = a.sum_rows();
        prop_assert!((col_sums.sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..500,
        h in 3usize..8,
        w in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut rng = TensorRng::seed_from(seed);
        let x = rng.init(&[1, 2, h, w], Init::Normal(1.0));
        let geo = Conv2dGeometry::new(h, w, k, k, stride, pad);
        let cols = im2col(&x, 2, &geo);
        let y = rng.init(cols.dims(), Init::Normal(1.0));
        let lhs = cols.dot(&y) as f64;
        let rhs = x.dot(&col2im(&y, 1, 2, &geo)) as f64;
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0));
    }

    #[test]
    fn clamp_respects_bounds(data in proptest::collection::vec(-100.0f32..100.0, 1..32)) {
        let n = data.len();
        let t = Tensor::from_vec(data, &[n]);
        let c = t.clamp(-1.0, 1.0);
        prop_assert!(c.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn direct_matmul_matches_naive_exactly(
        m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1000,
    ) {
        // m·k·n < 2^18, so this stays on the direct path; shapes cover
        // everything non-divisible by MR=8 / NR=4.
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a.matmul(&b);
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }
}

// Larger shapes that cross BLOCKED_FLOP_THRESHOLD (2^18 flops) and so take
// the packed, cache-blocked kernel. Fewer cases — each one is a real GEMM.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn blocked_matmul_matches_naive_exactly(
        m in 64usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
    ) {
        // m·k·n ≥ 64·240·33 > 2^18 → blocked path; k straddles KC=256 so
        // some shapes accumulate a C tile across two packed panels, and the
        // ranges are chosen to never divide MR/NR/MC evenly for all cases.
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a.matmul(&b);
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }

    #[test]
    fn blocked_tn_matches_naive_exactly(
        m in 100usize..130, k in 64usize..90, n in 45usize..60, seed in 0u64..1000,
    ) {
        // Exercises the ColMajor packing specialization on the blocked path.
        let mut rng = TensorRng::seed_from(seed);
        let a_t = rng.init(&[k, m], Init::Normal(1.0));
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let fast = a_t.matmul_tn(&b);
        let a = a_t.transpose();
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }

    /// Every vector micro-tile must reproduce the pinned scalar kernel
    /// bitwise on the blocked path — including on signed zeros, subnormals,
    /// and NaNs sprinkled through both operands (the packed path has no
    /// zero-skip, so NaN terms flow through every tier identically).
    #[test]
    fn vector_tiers_match_pinned_scalar_bitwise(
        m in 64usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
        picks in proptest::collection::vec((0usize..1 << 16, 0usize..16), 0..12),
    ) {
        const EDGE: [f32; 8] = [
            0.0,
            -0.0,
            f32::NAN,
            f32::MIN_POSITIVE,      // smallest normal
            1.0e-40,                // subnormal
            -1.0e-44,               // subnormal, negative
            3.0e38,                 // near f32::MAX — products overflow to inf
            -7.25,
        ];
        let tier = detect();
        prop_assume!(tier != DispatchTier::Scalar);
        let mut rng = TensorRng::seed_from(seed);
        let mut a = rng.init(&[m, k], Init::Normal(1.0)).as_slice().to_vec();
        let mut b = rng.init(&[k, n], Init::Normal(1.0)).as_slice().to_vec();
        let (alen, blen) = (a.len(), b.len());
        for &(pos, val) in &picks {
            a[pos % alen] = EDGE[val % EDGE.len()];
            b[(pos / 7) % blen] = EDGE[(val + 3) % EDGE.len()];
        }
        let av = MatView::row_major(&a, m, k);
        let bv = MatView::row_major(&b, k, n);
        let mut scalar = vec![0.0f32; m * n];
        matmul_into_with(
            &av, &bv, &mut scalar, DispatchTier::Scalar, KernelParams::pinned_scalar(),
        );
        let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
        for &tile in MicroTile::candidates(tier) {
            let params = KernelParams { mc: 64, kc: 256, nc: 512, tile };
            let mut out = vec![0.0f32; m * n];
            matmul_into_with(&av, &bv, &mut out, tier, params);
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&sb, &ob, "tile {:?} diverged from pinned scalar", tile);
        }
    }

    /// Tier equality on the non-row-major operand layouts: a transposed
    /// (ColMajor) A against a conv-gradient-style BatchCol B, both packed
    /// through their specialized paths.
    #[test]
    fn vector_tiers_match_scalar_on_all_layouts(
        m in 100usize..130, half in 32usize..45, n in 45usize..60, seed in 0u64..1000,
    ) {
        let tier = detect();
        prop_assume!(tier != DispatchTier::Scalar);
        let k = 2 * half; // batch=2, positions=half → k rows
        let mut rng = TensorRng::seed_from(seed);
        let a_t = rng.init(&[k, m], Init::Normal(1.0));
        let b_nchw = rng.init(&[2, n, half], Init::Normal(1.0));
        let av = MatView::transposed(a_t.as_slice(), m, k);
        let bv = MatView::batch_transposed(b_nchw.as_slice(), 2, n, half);
        let mut scalar = vec![0.0f32; m * n];
        matmul_into_with(
            &av, &bv, &mut scalar, DispatchTier::Scalar, KernelParams::pinned_scalar(),
        );
        let sb: Vec<u32> = scalar.iter().map(|v| v.to_bits()).collect();
        for &tile in MicroTile::candidates(tier) {
            let params = KernelParams { mc: 64, kc: 256, nc: 512, tile };
            let mut out = vec![0.0f32; m * n];
            matmul_into_with(&av, &bv, &mut out, tier, params);
            let ob: Vec<u32> = out.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&sb, &ob, "tile {:?} diverged on ColMajor×BatchCol", tile);
        }
    }

    #[test]
    fn blocked_nt_matches_naive_exactly(
        m in 100usize..130, k in 64usize..90, n in 45usize..60, seed in 0u64..1000,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let b_t = rng.init(&[n, k], Init::Normal(1.0));
        let fast = a.matmul_nt(&b_t);
        let b = b_t.transpose();
        let naive = naive_matmul(a.as_slice(), b.as_slice(), m, k, n);
        prop_assert_eq!(fast.as_slice(), &naive[..]);
    }
}

/// Special values sprinkled into operands by the cache/epilogue equality
/// sweeps: NaN payloads, signed zeros, subnormals, and near-overflow
/// magnitudes all have to survive every code path bitwise.
const SPECIALS: [f32; 8] = [
    0.0,
    -0.0,
    f32::NAN,
    f32::MIN_POSITIVE,
    1.0e-40,  // subnormal
    -1.0e-44, // subnormal, negative
    3.0e38,   // products overflow to inf
    -7.25,
];

fn sprinkle(data: &mut [f32], picks: &[(usize, usize)], salt: usize) {
    let len = data.len();
    for &(pos, val) in picks {
        data[(pos + salt) % len] = SPECIALS[(val + salt) % SPECIALS.len()];
    }
}

fn bits(t: &Tensor) -> Vec<u32> {
    t.as_slice().iter().map(|v| v.to_bits()).collect()
}

// Packed-operand-cache and fused-epilogue equality sweeps. The cache and
// the epilogues are performance features that must be bitwise invisible;
// these run the same product with the feature forced off and forced on
// (cold → admitted → hot) and require identical bits, on both the direct
// and blocked dispatch paths, across all B layouts the nn stack uses.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pack_cache_on_off_is_bitwise_invisible(
        m in 60usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
        picks in proptest::collection::vec((0usize..1 << 16, 0usize..16), 0..10),
    ) {
        let _g = crate::kernel::pack_cache::test_override_lock();
        let mut rng = TensorRng::seed_from(seed);
        let a = rng.init(&[m, k], Init::Normal(1.0));
        let mut b = rng.init(&[k, n], Init::Normal(1.0));
        let mut b_t = rng.init(&[n, k], Init::Normal(1.0));
        sprinkle(b.as_mut_slice(), &picks, 0);
        sprinkle(b_t.as_mut_slice(), &picks, 3);

        crate::set_pack_cache_enabled(Some(false));
        crate::clear_pack_cache();
        let plain_nn = bits(&a.matmul(&b));
        let plain_nt = bits(&a.matmul_nt(&b_t));

        crate::set_pack_cache_enabled(Some(true));
        crate::clear_pack_cache();
        // Three passes: first sighting (uncached), admission (packs into
        // the cache), and a hot hit serving the cached panels. RowMajor
        // and ColMajor B exercise both packing specializations.
        for pass in 0..3 {
            prop_assert_eq!(&bits(&a.matmul(&b)), &plain_nn, "matmul pass {}", pass);
            prop_assert_eq!(&bits(&a.matmul_nt(&b_t)), &plain_nt, "matmul_nt pass {}", pass);
        }

        crate::set_pack_cache_enabled(None);
        crate::clear_pack_cache();
    }

    #[test]
    fn fused_epilogues_match_unfused_bitwise_blocked(
        m in 60usize..100, k in 240usize..280, n in 33usize..70, seed in 0u64..1000,
        picks in proptest::collection::vec((0usize..1 << 16, 0usize..16), 0..10),
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let mut a = rng.init(&[m, k], Init::Normal(1.0));
        let mut b = rng.init(&[k, n], Init::Normal(1.0));
        let mut bias = rng.init(&[n], Init::Normal(1.0));
        sprinkle(a.as_mut_slice(), &picks, 0);
        sprinkle(b.as_mut_slice(), &picks, 3);
        sprinkle(bias.as_mut_slice(), &picks, 5);

        let unfused = a.matmul(&b).add_row_broadcast(&bias);
        prop_assert_eq!(bits(&a.matmul_bias(&b, &bias)), bits(&unfused));
        let unfused_relu = unfused.map(|x| x.max(0.0));
        prop_assert_eq!(bits(&a.matmul_bias_relu(&b, &bias)), bits(&unfused_relu));
    }
}

proptest! {
    #[test]
    fn fused_epilogues_match_unfused_bitwise_direct(
        m in 1usize..20, k in 1usize..24, n in 1usize..24, seed in 0u64..1000,
        picks in proptest::collection::vec((0usize..1 << 12, 0usize..16), 0..6),
    ) {
        // m·k·n < 2^18 → direct path, shapes not divisible by MR/NR.
        let mut rng = TensorRng::seed_from(seed);
        let mut a = rng.init(&[m, k], Init::Normal(1.0));
        let mut b = rng.init(&[k, n], Init::Normal(1.0));
        let mut bias = rng.init(&[n], Init::Normal(1.0));
        sprinkle(a.as_mut_slice(), &picks, 0);
        sprinkle(b.as_mut_slice(), &picks, 3);
        sprinkle(bias.as_mut_slice(), &picks, 5);

        let unfused = a.matmul(&b).add_row_broadcast(&bias);
        prop_assert_eq!(bits(&a.matmul_bias(&b, &bias)), bits(&unfused));
        let unfused_relu = unfused.map(|x| x.max(0.0));
        prop_assert_eq!(bits(&a.matmul_bias_relu(&b, &bias)), bits(&unfused_relu));
    }
}

/// Mutating a cached operand through any mutation surface must invalidate
/// its cache identity: the next product repacks and reflects the new
/// bytes, never the stale panels.
#[test]
fn mutated_operand_never_serves_stale_packs() {
    let _g = crate::kernel::pack_cache::test_override_lock();
    crate::set_pack_cache_enabled(Some(true));
    crate::clear_pack_cache();

    let (m, k, n) = (70, 260, 48); // blocked path
    let mut rng = TensorRng::seed_from(42);
    let a = rng.init(&[m, k], Init::Normal(1.0));
    let mut b = rng.init(&[k, n], Init::Normal(1.0));
    // Warm past the seen-once admission gate so the panels are resident.
    let _ = a.matmul(&b);
    let _ = a.matmul(&b);
    let hits_before = crate::pack_stats().hits;
    let _ = a.matmul(&b);
    assert!(
        crate::pack_stats().hits > hits_before,
        "warmup should leave the packed operand hot in the cache"
    );

    b.as_mut_slice()[k * n / 2] += 1.0;
    let naive = {
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a.as_slice()[i * k + kk] * b.as_slice()[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    };
    let fresh = a.matmul(&b);
    assert_eq!(
        bits(&fresh),
        naive.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "stale cached panels served after mutation"
    );

    crate::set_pack_cache_enabled(None);
    crate::clear_pack_cache();
}

/// `matmul_batched_into` must be bitwise-equal to issuing the same GEMMs
/// one call at a time, for every epilogue, on both dispatch paths.
#[test]
fn batched_gemm_matches_per_call_bitwise() {
    use crate::{matmul_batched_into, matmul_views_ep, Epilogue};

    for &(m, k, n) in &[(5usize, 7usize, 9usize), (70, 260, 48)] {
        let mut rng = TensorRng::seed_from(7);
        let b = rng.init(&[k, n], Init::Normal(1.0));
        let instances: Vec<Tensor> = (0..5)
            .map(|_| rng.init(&[m, k], Init::Normal(1.0)))
            .collect();
        let bias = rng.init(&[n], Init::Normal(1.0));
        for ep_kind in 0..3 {
            let ep = || match ep_kind {
                0 => Epilogue::None,
                1 => Epilogue::Bias(bias.as_slice()),
                _ => Epilogue::BiasRelu(bias.as_slice()),
            };
            let bv = MatView::row_major(b.as_slice(), k, n);
            let avs: Vec<MatView<'_>> = instances
                .iter()
                .map(|t| MatView::row_major(t.as_slice(), m, k))
                .collect();
            let mut outs = vec![vec![0.0f32; m * n]; instances.len()];
            {
                let mut out_refs: Vec<&mut [f32]> =
                    outs.iter_mut().map(|v| v.as_mut_slice()).collect();
                matmul_batched_into(&avs, &bv, &mut out_refs, ep());
            }
            for (av, out) in avs.iter().zip(&outs) {
                let solo = matmul_views_ep(av, &bv, ep());
                assert_eq!(
                    solo.as_slice()
                        .iter()
                        .map(|v| v.to_bits())
                        .collect::<Vec<_>>(),
                    out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "batched diverged at ({m},{k},{n}) epilogue {ep_kind}"
                );
            }
        }
    }
}
