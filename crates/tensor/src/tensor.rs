//! The owned dense tensor type and its elementwise arithmetic.
//!
//! Tensor storage is backed by the thread-local [`scratch`] arena: every
//! constructor and allocating operation takes its `Vec<f32>` from the pool,
//! and `Drop` returns it — so repeated same-shaped steps (a training loop)
//! recycle the same buffers instead of hitting the heap.

use crate::{scratch, Shape};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Index, IndexMut, Mul, Neg, Sub};
use std::sync::atomic::{AtomicU64, Ordering};

/// Global stamp source for tensor identity.
///
/// Fresh tensors take a new `id`; every mutation takes a new `version`
/// stamp. Drawing both from one monotone counter guarantees that a given
/// `(id, version)` pair names exactly one byte-for-byte content, even when
/// clones of the same tensor diverge independently: each divergent
/// mutation gets a stamp no other tensor has ever used as a version.
static STAMP: AtomicU64 = AtomicU64::new(1);

fn next_stamp() -> u64 {
    STAMP.fetch_add(1, Ordering::Relaxed)
}

/// An owned, row-major, dense `f32` tensor.
///
/// `Tensor` is the single data container shared by the neural-network stack,
/// the DRL policies and the synthetic dataset generators. It favors
/// simplicity over generality: data is always contiguous, operations
/// allocate their results, and shape mismatches panic (they are programming
/// errors in this codebase, never runtime conditions).
///
/// # Examples
///
/// ```
/// use chiron_tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]);
/// let y = x.map(f32::abs);
/// assert_eq!(y.as_slice(), &[1.0, 2.0, 3.0]);
/// assert_eq!((&y + &y).sum(), 12.0);
/// ```
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
    /// Stable identity shared by clones; see [`Tensor::pack_key`].
    id: u64,
    /// Content stamp, replaced on every mutation; see [`Tensor::pack_key`].
    version: u64,
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        // Identity stamps are deliberately excluded: equality is
        // value-equality over shape and contents, so a clone (same id) and
        // an independently built tensor (different id) compare the same way.
        self.shape.same_as(&other.shape) && self.data == other.data
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        let mut data = scratch::take_vec_with_capacity(self.data.len());
        data.extend_from_slice(&self.data);
        // Clones share the source's (id, version): contents are identical,
        // so packed panels cached for the source serve the clone too. The
        // first mutation of either side re-stamps it (see `touch`).
        Self {
            data,
            shape: self.shape.clone(),
            id: self.id,
            version: self.version,
        }
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        scratch::recycle(std::mem::take(&mut self.data));
    }
}

impl Tensor {
    /// Wraps freshly produced contents in a new identity: a new `id` and a
    /// version stamp no cached pack can refer to yet.
    fn fresh(data: Vec<f32>, shape: Shape) -> Self {
        Self {
            data,
            shape,
            id: next_stamp(),
            version: 0,
        }
    }

    /// Re-stamps the tensor after a mutation so stale packed panels keyed by
    /// the previous `(id, version)` can never be mistaken for its new
    /// contents. Must be called by every mutation path, including interior
    /// ones that write `self.data` directly.
    fn touch(&mut self) {
        self.version = next_stamp();
    }

    /// The `(id, version)` pair identifying this tensor's current contents.
    ///
    /// The pair is stable while the tensor is unmodified, shared with
    /// clones (which hold byte-identical data), and replaced by a globally
    /// unique stamp on every mutation. The kernel's packed-operand cache
    /// keys on it: equal keys imply byte-identical contents, so a panel
    /// packed for one tensor may be reused for any tensor carrying the same
    /// key. The converse does not hold — value-equal tensors built
    /// independently get distinct keys.
    pub fn pack_key(&self) -> (u64, u64) {
        (self.id, self.version)
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            data.len(),
            shape.numel(),
            "data length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.numel()
        );
        Self::fresh(data, shape)
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        let mut data = scratch::take_vec_with_capacity(1);
        data.push(value);
        Self::fresh(data, Shape::scalar())
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let mut data = scratch::take_vec_with_capacity(shape.numel());
        data.resize(shape.numel(), value);
        Self::fresh(data, shape)
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(dims: &[usize]) -> Self {
        Self::full(dims, 0.0)
    }

    /// Creates a one-filled tensor.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a zero tensor with the same shape as `self`.
    pub fn zeros_like(&self) -> Self {
        Self::fresh(scratch::take_vec(self.data.len()), self.shape.clone())
    }

    /// The `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// A rank-1 tensor with `n` evenly spaced values in `[start, end]`
    /// (inclusive endpoints; `n >= 2`).
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn linspace(start: f32, end: f32, n: usize) -> Self {
        assert!(n >= 2, "linspace needs at least two points, got {n}");
        let step = (end - start) / (n as f32 - 1.0);
        let mut data = scratch::take_vec_with_capacity(n);
        data.extend((0..n).map(|i| start + step * i as f32));
        Self::from_vec(data, &[n])
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimension sizes, equivalent to `self.shape().dims()`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Borrows the underlying row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrows the underlying row-major data.
    ///
    /// Conservatively re-stamps the tensor's version (the borrow may be
    /// used to write), invalidating any cached packed panels for it.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        self.touch();
        &mut self.data
    }

    /// Consumes the tensor, returning its data vector. (Dropping the
    /// returned vector frees it; re-wrapping it in a tensor keeps it on the
    /// arena's recycling path.)
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// The single value of a one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a single-element tensor, shape is {}",
            self.shape
        );
        self.data[0]
    }

    /// Reinterprets the data with a new shape of equal element count.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Tensor {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.numel(),
            self.data.len(),
            "cannot reshape {} elements into {}",
            self.data.len(),
            shape
        );
        let mut data = scratch::take_vec_with_capacity(self.data.len());
        data.extend_from_slice(&self.data);
        Tensor::fresh(data, shape)
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        let mut data = scratch::take_vec_with_capacity(self.data.len());
        data.extend(self.data.iter().map(|&x| f(x)));
        Tensor::fresh(data, self.shape.clone())
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        self.touch();
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip");
        let mut data = scratch::take_vec_with_capacity(self.data.len());
        data.extend(self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)));
        Tensor::fresh(data, self.shape.clone())
    }

    /// `self += alpha * other`, the BLAS `axpy` primitive used by optimizers.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        self.assert_same_shape(other, "axpy");
        self.touch();
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale_inplace(&mut self, s: f32) {
        self.touch();
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Returns `self * s` as a new tensor.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Sets every element to zero (gradient reset).
    pub fn fill(&mut self, value: f32) {
        self.touch();
        for x in &mut self.data {
            *x = value;
        }
    }

    /// Elementwise (Hadamard) product.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a * b)
    }

    /// Adds `row` (a rank-1 tensor matching the last dimension) to every row
    /// of `self` — the standard bias broadcast.
    ///
    /// # Panics
    ///
    /// Panics if `row` is not rank-1 or its length differs from the last
    /// dimension of `self`.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.shape.rank(), 1, "broadcast row must be rank-1");
        let (rows, cols) = self.shape.as_matrix();
        assert_eq!(
            row.numel(),
            cols,
            "broadcast row length {} does not match last dim {}",
            row.numel(),
            cols
        );
        let mut out = self.clone();
        out.touch();
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += row.data[c];
            }
        }
        out
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Returns `true` if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert!(
            self.shape.same_as(&other.shape),
            "{op}: shape mismatch {} vs {}",
            self.shape,
            other.shape
        );
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const PREVIEW: usize = 8;
        write!(f, "Tensor({}, [", self.shape)?;
        for (i, x) in self.data.iter().take(PREVIEW).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.4}")?;
        }
        if self.data.len() > PREVIEW {
            write!(f, ", …")?;
        }
        write!(f, "])")
    }
}

impl Index<&[usize]> for Tensor {
    type Output = f32;

    fn index(&self, index: &[usize]) -> &f32 {
        &self.data[self.shape.offset(index)]
    }
}

impl IndexMut<&[usize]> for Tensor {
    fn index_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        self.touch();
        &mut self.data[off]
    }
}

macro_rules! binop {
    ($trait:ident, $method:ident, $f:expr) => {
        impl $trait for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip(rhs, $f)
            }
        }
        impl $trait<f32> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: f32) -> Tensor {
                self.map(|a| $f(a, rhs))
            }
        }
    };
}

binop!(Add, add, |a, b| a + b);
binop!(Sub, sub, |a, b| a - b);
binop!(Mul, mul, |a, b| a * b);
binop!(Div, div, |a, b| a / b);

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|a| -a)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.axpy(1.0, rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_correctly() {
        assert_eq!(Tensor::zeros(&[2, 2]).as_slice(), &[0.0; 4]);
        assert_eq!(Tensor::ones(&[3]).as_slice(), &[1.0; 3]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i[&[0, 0][..]], 1.0);
        assert_eq!(i[&[1, 1][..]], 1.0);
        assert_eq!(i[&[0, 1][..]], 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn linspace_endpoints() {
        let t = Tensor::linspace(0.0, 1.0, 5);
        assert_eq!(t.as_slice(), &[0.0, 0.25, 0.5, 0.75, 1.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 6.0]);
        assert_eq!((&a - &b).as_slice(), &[-2.0, -2.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 8.0]);
        assert_eq!((&b / &a).as_slice(), &[3.0, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        a.axpy(-0.5, &g);
        assert_eq!(a.as_slice(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn row_broadcast_adds_bias() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y.as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let x = Tensor::linspace(0.0, 5.0, 6);
        let y = x.reshape(&[2, 3]);
        assert_eq!(y.dims(), &[2, 3]);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn zip_rejects_mismatched_shapes() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        let _ = &a + &b;
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_len() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 2]);
    }

    #[test]
    fn norm_and_finiteness() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert!((t.norm() - 5.0).abs() < 1e-6);
        assert!(t.is_finite());
        let bad = Tensor::from_vec(vec![f32::NAN], &[1]);
        assert!(!bad.is_finite());
    }

    #[test]
    fn pack_key_is_shared_by_clones_and_replaced_on_mutation() {
        let t = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let c = t.clone();
        assert_eq!(t.pack_key(), c.pack_key(), "clones share identity");

        let u = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_ne!(t.pack_key(), u.pack_key(), "independent tensors differ");

        let mut a = t.clone();
        let mut b = t.clone();
        let before = t.pack_key();
        a.as_mut_slice()[0] = 9.0;
        b.fill(7.0);
        assert_ne!(a.pack_key(), before, "mutation re-stamps");
        assert_ne!(b.pack_key(), before, "mutation re-stamps");
        assert_ne!(
            a.pack_key(),
            b.pack_key(),
            "divergent clones never collide on a key"
        );
        assert_eq!(t.pack_key(), before, "source is untouched");
    }

    #[test]
    fn every_mutation_surface_bumps_version() {
        let src = Tensor::ones(&[2, 2]);
        let key = src.pack_key();

        let mut t = src.clone();
        t.map_inplace(|x| x + 1.0);
        assert_ne!(t.pack_key(), key);

        let mut t = src.clone();
        t.axpy(1.0, &src);
        assert_ne!(t.pack_key(), key);

        let mut t = src.clone();
        t.scale_inplace(2.0);
        assert_ne!(t.pack_key(), key);

        let mut t = src.clone();
        t[&[0, 0][..]] = 5.0;
        assert_ne!(t.pack_key(), key);

        let y = src.add_row_broadcast(&Tensor::ones(&[2]));
        assert_ne!(y.pack_key(), key, "broadcast result is distinct content");
    }

    #[test]
    fn equality_ignores_identity_stamps() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        assert_ne!(a.pack_key(), b.pack_key());
        assert_eq!(a, b);
        assert_ne!(a, Tensor::from_vec(vec![1.0, 2.0], &[2, 1]));
    }

    #[test]
    fn indexing_round_trips() {
        let mut t = Tensor::zeros(&[2, 3]);
        t[&[1, 2][..]] = 9.0;
        assert_eq!(t[&[1, 2][..]], 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }
}
