//! # chiron-tensor
//!
//! A minimal, dependency-light dense tensor library used by the Chiron
//! (ICDCS 2021) reproduction. It provides exactly the operations the
//! from-scratch neural-network stack (`chiron-nn`) needs:
//!
//! * an owned, row-major, `f32` [`Tensor`] with an explicit [`Shape`];
//! * elementwise arithmetic, broadcasting against scalars and rows;
//! * 2-D matrix multiplication (plus transposed variants) tuned for the
//!   small policy/value networks and CNNs the paper trains;
//! * `im2col`/`col2im` data-layout transforms used by convolution layers;
//! * reductions (`sum`, `mean`, `max`, `argmax`) along the last axis;
//! * seeded random initialization (uniform, normal, Xavier/He fan-based).
//!
//! The library is intentionally *not* a general ndarray replacement: shapes
//! are validated eagerly and dimension mismatches panic with descriptive
//! messages, because inside a training loop a shape error is always a
//! programming bug rather than a recoverable condition.
//!
//! ## Example
//!
//! ```
//! use chiron_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
//! ```

mod conv;
mod init;
pub mod kernel;
mod ops;
pub mod pool;
pub mod scope;
pub mod scratch;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeometry};
pub use init::{Init, RngState, TensorRng};
pub use kernel::pack_cache::{
    clear_pack_cache, pack_cache_enabled, pack_stats, set_pack_cache_cap_bytes,
    set_pack_cache_enabled, PackStats,
};
pub use kernel::simd::{active_tier, detect, DispatchTier, MicroTile};
pub use kernel::tune::{cached_params, params_for, reset_profile_cache, KernelParams, ShapeKey};
pub use kernel::{
    matmul_batched_into, matmul_into, matmul_into_ep, matmul_into_with, matmul_views,
    matmul_views_ep, Epilogue, MatView,
};
pub use shape::Shape;
pub use tensor::Tensor;

#[cfg(test)]
mod proptests;
