//! Shared deterministic worker pool — the parallel compute backend behind
//! the tensor hot paths (matmul, im2col/col2im) and the batched training
//! passes in `chiron-nn` / `chiron-drl`.
//!
//! # Design
//!
//! One process-wide pool of persistent `std::thread` workers fed through a
//! `crossbeam` MPMC channel. Work is expressed as a fixed number of
//! *blocks*; workers (plus the calling thread) pull block indices from an
//! atomic dispenser until none remain. Two properties make every result
//! **bitwise identical regardless of thread count**:
//!
//! 1. **Fixed partitioning.** Blocks are defined by the problem size alone
//!    (e.g. "16 output rows per block"), never by the number of threads.
//! 2. **No shared accumulation.** Each block writes a disjoint output
//!    region, and per-block partial results are reduced by the caller in
//!    block-index order. Nothing is ever accumulated atomically.
//!
//! Because each output element is computed by exactly one block with a
//! fixed sequence of floating-point operations, scheduling cannot perturb
//! results — the serial path and any parallel schedule agree bit-for-bit.
//!
//! # Thread count
//!
//! The initial thread count comes from the `CHIRON_THREADS` environment
//! variable (default: available parallelism; `1` selects the serial path).
//! [`set_threads`] adjusts it at runtime, which the benchmarks and the
//! determinism tests use to compare serial and parallel execution within
//! one process.
//!
//! Nested parallelism is suppressed: a task already running on a pool
//! worker executes inner `parallel_for` calls inline. This cannot change
//! results (see above) and prevents pool-wide deadlock.
//!
//! # Examples
//!
//! ```
//! use chiron_tensor::pool;
//!
//! let mut out = vec![0.0f32; 1000];
//! pool::parallel_chunks_mut(&mut out, 100, |block, chunk| {
//!     for (i, v) in chunk.iter_mut().enumerate() {
//!         *v = (block * 100 + i) as f32;
//!     }
//! });
//! assert_eq!(out[999], 999.0);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crossbeam::channel::{unbounded, Receiver, Sender};

/// Upper bound on the configurable thread count.
pub const MAX_THREADS: usize = 64;

/// Countdown latch: `wait` returns once `count_down` has been called the
/// configured number of times.
struct Latch {
    remaining: Mutex<usize>,
    zero: Condvar,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            zero: Condvar::new(),
        }
    }

    fn count_down(&self) {
        let mut r = self.remaining.lock().expect("latch lock");
        *r -= 1;
        if *r == 0 {
            self.zero.notify_all();
        }
    }

    fn wait(&self) {
        let mut r = self.remaining.lock().expect("latch lock");
        while *r > 0 {
            r = self.zero.wait(r).expect("latch wait");
        }
    }
}

/// One parallel region. Every copy sent to the channel is consumed by some
/// worker, which drains the block dispenser and then counts the latch down,
/// so the caller's `task` reference provably outlives all uses.
#[derive(Clone)]
struct Job {
    task: &'static (dyn Fn(usize) + Sync),
    next: Arc<AtomicUsize>,
    blocks: usize,
    latch: Arc<Latch>,
    panicked: Arc<AtomicBool>,
}

fn drain_dispenser(job: &Job) {
    loop {
        let b = job.next.fetch_add(1, Ordering::Relaxed);
        if b >= job.blocks {
            break;
        }
        (job.task)(b);
    }
}

struct Pool {
    tx: Sender<Job>,
    rx: Receiver<Job>,
    active: AtomicUsize,
    spawned: Mutex<usize>,
}

thread_local! {
    /// Set on pool workers for their whole lifetime: inner parallel
    /// regions run inline instead of re-entering the pool.
    static ON_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Initial thread count: `CHIRON_THREADS` (via
/// [`RuntimeConfig`](chiron_telemetry::RuntimeConfig)) if set to a positive
/// integer, otherwise the machine's available parallelism.
fn env_threads() -> usize {
    chiron_telemetry::RuntimeConfig::global()
        .threads
        .filter(|&n| n > 0)
        .unwrap_or_else(default_threads)
        .clamp(1, MAX_THREADS)
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let (tx, rx) = unbounded();
            Pool {
                tx,
                rx,
                active: AtomicUsize::new(env_threads()),
                spawned: Mutex::new(0),
            }
        })
    }

    /// Lazily brings the number of live workers up to `needed` (the
    /// calling thread always acts as one extra worker, so `threads() - 1`
    /// spawned workers suffice).
    fn ensure_workers(&self, needed: usize) {
        let needed = needed.min(MAX_THREADS - 1);
        let mut spawned = self.spawned.lock().expect("pool spawn lock");
        while *spawned < needed {
            let rx = self.rx.clone();
            std::thread::Builder::new()
                .name(format!("chiron-pool-{spawned}"))
                .spawn(move || {
                    ON_WORKER.with(|f| f.set(true));
                    while let Ok(job) = rx.recv() {
                        let outcome = catch_unwind(AssertUnwindSafe(|| drain_dispenser(&job)));
                        if outcome.is_err() {
                            job.panicked.store(true, Ordering::SeqCst);
                        }
                        job.latch.count_down();
                    }
                })
                .expect("spawn chiron-pool worker");
            *spawned += 1;
        }
    }
}

/// The current target thread count (1 = serial).
pub fn threads() -> usize {
    Pool::global().active.load(Ordering::Relaxed)
}

/// Sets the target thread count at runtime, clamped to
/// `[1, MAX_THREADS]`. `1` routes everything through the serial path.
///
/// This is process-global; the benchmarks and determinism tests use it to
/// compare serial and parallel execution without re-launching.
pub fn set_threads(n: usize) {
    let pool = Pool::global();
    let n = n.clamp(1, MAX_THREADS);
    pool.active.store(n, Ordering::Relaxed);
    pool.ensure_workers(n.saturating_sub(1));
}

/// Runs `task(block)` for every `block` in `0..blocks`, fanning out across
/// the pool. Returns after every block has completed. Runs inline when the
/// pool is serial, the region is trivial, or the caller is itself a pool
/// worker (nested region).
///
/// Determinism contract: `task` must write only block-`b`-owned data when
/// invoked with `b`. Under that contract the results are bitwise identical
/// for every thread count, including 1.
///
/// # Panics
///
/// Propagates a panic from `task` (after all blocks finished or were
/// abandoned).
pub fn parallel_for<F: Fn(usize) + Sync>(blocks: usize, task: F) {
    if blocks == 0 {
        return;
    }
    // Fan-out traffic for the telemetry layer (observational only).
    static POOL_REGIONS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.pool.regions");
    static POOL_BLOCKS: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.pool.blocks");
    static POOL_INLINE: chiron_telemetry::Counter =
        chiron_telemetry::Counter::new("tensor.pool.inline_regions");
    let pool = Pool::global();
    let helpers = pool
        .active
        .load(Ordering::Relaxed)
        .min(blocks)
        .saturating_sub(1);
    if helpers == 0 || ON_WORKER.with(|f| f.get()) {
        POOL_INLINE.add(1);
        for b in 0..blocks {
            task(b);
        }
        return;
    }
    POOL_REGIONS.add(1);
    POOL_BLOCKS.add(blocks as u64);
    pool.ensure_workers(helpers);

    let task_ref: &(dyn Fn(usize) + Sync) = &task;
    // SAFETY: the latch counts one count_down per job copy sent, and
    // `wait` below does not return until every copy has been consumed and
    // its dispenser drain finished. `task` therefore outlives every use of
    // the transmuted reference.
    let task_static: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task_ref) };
    let job = Job {
        task: task_static,
        next: Arc::new(AtomicUsize::new(0)),
        blocks,
        latch: Arc::new(Latch::new(helpers)),
        panicked: Arc::new(AtomicBool::new(false)),
    };
    for _ in 0..helpers {
        assert!(
            pool.tx.send(job.clone()).is_ok(),
            "pool channel closed unexpectedly"
        );
    }
    // The calling thread participates instead of blocking idle.
    let own = catch_unwind(AssertUnwindSafe(|| drain_dispenser(&job)));
    job.latch.wait();
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    assert!(
        !job.panicked.load(Ordering::SeqCst),
        "chiron-tensor pool: a worker panicked inside a parallel task"
    );
}

/// A raw pointer that may cross threads. Soundness is established per use
/// site: every block touches a disjoint region and the region outlives the
/// parallel call.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    // Accessed through a method so closures capture the `SendPtr` itself
    // (which is Sync) rather than the raw-pointer field (which is not).
    fn get(&self) -> *mut T {
        self.0
    }
}

/// Splits `out` into consecutive chunks of `chunk_len` elements (the last
/// may be shorter), runs `f(block_index, chunk)` for each in parallel, and
/// returns the per-block results **in block order** — the caller reduces
/// them sequentially, which keeps reductions deterministic.
///
/// # Panics
///
/// Panics if `chunk_len == 0`, or propagates a panic from `f`.
pub fn parallel_chunks_map<T, R, F>(out: &mut [T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut [T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let len = out.len();
    let blocks = len.div_ceil(chunk_len);
    let mut results: Vec<Option<R>> = (0..blocks).map(|_| None).collect();
    let out_ptr = SendPtr(out.as_mut_ptr());
    let res_ptr = SendPtr(results.as_mut_ptr());
    parallel_for(blocks, |b| {
        let start = b * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: block `b` exclusively owns chunk `b` of `out` and slot
        // `b` of `results`; both outlive the parallel_for call, which does
        // not return before every block completes.
        unsafe {
            let chunk = std::slice::from_raw_parts_mut(out_ptr.get().add(start), end - start);
            *res_ptr.get().add(b) = Some(f(b, chunk));
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every block ran"))
        .collect()
}

/// True when a region of `blocks` blocks would run inline (serial pool,
/// trivial region, or nested call from a worker) — the cases where the
/// fan-out bookkeeping, and its allocations, can be skipped entirely.
pub(crate) fn runs_inline(blocks: usize) -> bool {
    threads().min(blocks) <= 1 || ON_WORKER.with(|f| f.get())
}

/// [`parallel_chunks_map`] without per-block results. The serial path is
/// allocation-free (no per-block result vector), which keeps single-thread
/// training steps off the heap entirely.
pub fn parallel_chunks_mut<T, F>(out: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    if runs_inline(out.len().div_ceil(chunk_len)) {
        for (b, chunk) in out.chunks_mut(chunk_len).enumerate() {
            f(b, chunk);
        }
        return;
    }
    let _ = parallel_chunks_map(out, chunk_len, |b, chunk| f(b, chunk));
}

/// Partitions `0..items` into fixed blocks of `block_len` indices, computes
/// `f(range)` per block in parallel, and sums the partial results **in
/// block-index order**. The sum is deterministic for every thread count
/// (but differs from a single left-to-right sum once `items > block_len`;
/// callers that need the exact serial rounding should sum serially).
///
/// # Panics
///
/// Panics if `block_len == 0`, or propagates a panic from `f`.
pub fn parallel_block_sum<F>(items: usize, block_len: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    assert!(block_len > 0, "block_len must be positive");
    let blocks = items.div_ceil(block_len);
    if runs_inline(blocks) {
        // Allocation-free serial path: accumulate partials directly in
        // block-index order — the same reduction order as the parallel path.
        let mut total = 0.0f64;
        for b in 0..blocks {
            let start = b * block_len;
            total += f(start..(start + block_len).min(items));
        }
        return total;
    }
    let mut partials = vec![0.0f64; blocks];
    let items_end = items;
    parallel_chunks_mut(&mut partials, 1, |b, slot| {
        let start = b * block_len;
        let end = (start + block_len).min(items_end);
        slot[0] = f(start..end);
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_block_once() {
        set_threads(4);
        let hits: Vec<AtomicUsize> = (0..97).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(97, |b| {
            hits[b].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn chunks_are_disjoint_and_ordered() {
        set_threads(4);
        let mut out = vec![0u32; 1003];
        parallel_chunks_mut(&mut out, 100, |b, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (b * 100 + i) as u32;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let run = |t: usize| -> Vec<f32> {
            set_threads(t);
            let mut out = vec![0.0f32; 513];
            parallel_chunks_mut(&mut out, 64, |b, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    // A rounding-sensitive computation.
                    *v = ((b * 64 + i) as f32 * 0.1).sin() / 3.0;
                }
            });
            out
        };
        let serial = run(1);
        let parallel = run(4);
        set_threads(1);
        assert_eq!(serial, parallel, "bitwise identity across thread counts");
    }

    #[test]
    fn block_sum_reduces_in_index_order() {
        set_threads(4);
        let s = parallel_block_sum(1000, 37, |r| r.map(|i| i as f64).sum());
        set_threads(1);
        assert_eq!(s, (0..1000).map(|i| i as f64).sum::<f64>());
    }

    #[test]
    fn nested_regions_run_inline() {
        set_threads(4);
        let mut out = vec![0.0f32; 64];
        parallel_chunks_mut(&mut out, 8, |b, chunk| {
            // Inner region from (possibly) a worker thread must not
            // deadlock and must behave identically.
            let mut inner = vec![0.0f32; 8];
            parallel_chunks_mut(&mut inner, 2, |ib, ic| {
                for (i, v) in ic.iter_mut().enumerate() {
                    *v = (ib * 2 + i) as f32;
                }
            });
            for (v, iv) in chunk.iter_mut().zip(&inner) {
                *v = b as f32 * 100.0 + iv;
            }
        });
        assert_eq!(out[9], 101.0);
        set_threads(1);
    }

    #[test]
    fn panics_propagate_to_caller() {
        set_threads(2);
        let outcome = std::panic::catch_unwind(|| {
            parallel_for(8, |b| {
                assert!(b < 4, "boom at block {b}");
            });
        });
        assert!(outcome.is_err());
        // The pool must still be usable afterwards.
        let mut out = vec![0.0f32; 16];
        parallel_chunks_mut(&mut out, 4, |b, c| c.iter_mut().for_each(|v| *v = b as f32));
        assert_eq!(out[15], 3.0);
        set_threads(1);
    }

    #[test]
    fn env_parsing_clamps_and_defaults() {
        assert!(env_threads() >= 1);
        assert!(env_threads() <= MAX_THREADS);
    }
}
