//! Cooperative SIGINT/SIGTERM handling without any C dependency.
//!
//! [`install`] registers a minimal `extern "C"` handler (via the libc
//! `signal` symbol every Unix process already links) that flips one
//! process-global atomic flag. Long-running loops — CLI training between
//! episodes, the serve supervisor between chunks — poll [`requested`] at
//! their natural boundaries, flush a final checkpoint plus telemetry, and
//! exit with [`EXIT_INTERRUPTED`] so scripts can distinguish an
//! interrupted run from a failed one.
//!
//! On non-Unix targets everything compiles to a no-op flag that only
//! tests can set.

use std::sync::atomic::{AtomicBool, Ordering};

/// Exit code for a run stopped by SIGINT/SIGTERM after a clean flush
/// (128 + SIGINT, the conventional shell encoding).
pub const EXIT_INTERRUPTED: i32 = 130;

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only an atomic store: anything else is unsound in a handler.
        REQUESTED.store(true, Ordering::SeqCst);
    }

    static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        // SAFETY: `signal` is the POSIX libc function; the handler only
        // performs an async-signal-safe atomic store.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent; no-op off Unix).
pub fn install() {
    imp::install();
}

/// Whether a shutdown signal has arrived since the last [`reset`].
#[must_use]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Clears the flag (tests, or a caller that handled the signal).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

/// Sets the flag as if a signal had arrived (used by tests and by the
/// daemon's `POST /shutdown` to share the drain path).
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lifecycle() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[cfg(unix)]
    #[test]
    fn real_signal_sets_flag() {
        extern "C" {
            fn raise(signum: i32) -> i32;
        }
        install();
        install(); // idempotent
        reset();
        // SAFETY: raising SIGINT in-process; our installed handler only
        // stores to an atomic.
        unsafe {
            raise(2);
        }
        // The handler runs synchronously for a self-raised signal.
        assert!(requested(), "SIGINT must set the shutdown flag");
        reset();
    }
}
