//! The HTTP daemon wrapping a [`Supervisor`].
//!
//! | Route | Meaning | Statuses |
//! |---|---|---|
//! | `POST /jobs` | submit a [`JobSpec`] (JSON body) | 202, 400, 429, 503 |
//! | `GET /jobs/:id` | job status + result | 200, 404 |
//! | `DELETE /jobs/:id` | cancel | 200, 404, 409 |
//! | `GET /healthz` | liveness + readiness + queue stats | 200, 503 |
//! | `GET /metrics` | Prometheus text (telemetry + serve counters) | 200 |
//! | `POST /shutdown` | begin drain-then-stop | 200 |
//!
//! Connections are handled sequentially on the accept thread with short
//! socket timeouts — every request is tiny, and all heavy work happens on
//! the supervisor's worker pool, so head-of-line blocking is bounded by a
//! socket timeout, not by job runtime.

use crate::chaos::FaultPlan;
use crate::config::ServeConfig;
use crate::http::{read_request, write_json, write_response, ParseError, Request};
use crate::job::{JobSpec, ServeError};
use crate::supervisor::{ServeStats, Supervisor};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SOCKET_TIMEOUT: Duration = Duration::from_secs(5);

/// A running daemon: supervisor + accept loop on its own thread.
pub struct Daemon {
    supervisor: Arc<Supervisor>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `cfg.addr` (port 0 selects an ephemeral port) and starts
    /// serving.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind or the state directory
    /// fails.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::start_inner(cfg, None)
    }

    /// [`Daemon::start`] with a chaos [`FaultPlan`] installed.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] when the bind or the state directory
    /// fails.
    pub fn start_with_chaos(cfg: ServeConfig, chaos: FaultPlan) -> Result<Self, ServeError> {
        Self::start_inner(cfg, Some(chaos))
    }

    fn start_inner(cfg: ServeConfig, chaos: Option<FaultPlan>) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let supervisor = Arc::new(match chaos {
            Some(plan) => Supervisor::start_with_chaos(cfg, plan)?,
            None => Supervisor::start(cfg)?,
        });
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let supervisor = Arc::clone(&supervisor);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(&listener, &supervisor, &stop))
                .map_err(ServeError::Io)?
        };
        Ok(Self {
            supervisor,
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the supervisor (used by tests and the CLI).
    #[must_use]
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }

    /// Whether a stop has been requested (via [`Daemon::request_shutdown`]
    /// or `POST /shutdown`). The CLI polls this to know when to `join`.
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Initiates drain-then-stop from outside the HTTP surface (the CLI's
    /// signal handler calls this): stop accepting, drain the supervisor,
    /// and unblock the accept thread.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.supervisor.drain();
        // Unblock the (possibly idle) accept loop with a throwaway
        // connection so it observes the stop flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Waits for the accept thread, then shuts the supervisor down
    /// (running jobs park at their next checkpoint within `timeout`).
    pub fn join(mut self, timeout: Duration) {
        self.request_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // If another clone of the Arc is still alive (only possible
        // through test misuse) the supervisor's Drop stops the workers.
        if let Ok(supervisor) = Arc::try_unwrap(self.supervisor) {
            supervisor.shutdown(timeout);
        }
    }
}

fn accept_loop(listener: &TcpListener, supervisor: &Supervisor, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = conn else { continue };
        let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
        handle_connection(&mut stream, supervisor, stop);
        if stop.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn handle_connection(stream: &mut TcpStream, supervisor: &Supervisor, stop: &AtomicBool) {
    let request = match read_request(stream) {
        Ok(request) => request,
        Err(ParseError::Io(_)) => return, // timeout/reset: nothing to answer
        Err(e @ ParseError::Malformed(_)) => {
            let _ = write_json(stream, 400, &error_body(&e.to_string()));
            return;
        }
        Err(e @ ParseError::TooLarge(_)) => {
            let _ = write_json(stream, 413, &error_body(&e.to_string()));
            return;
        }
    };
    let _ = respond(stream, supervisor, stop, &request);
}

fn respond(
    stream: &mut TcpStream,
    supervisor: &Supervisor,
    stop: &AtomicBool,
    request: &Request,
) -> std::io::Result<()> {
    let path = request.path.as_str();
    match (request.method.as_str(), path) {
        ("POST", "/jobs") => {
            let Ok(text) = std::str::from_utf8(&request.body) else {
                return write_json(stream, 400, &error_body("job body must be UTF-8 JSON"));
            };
            let spec: JobSpec = match serde_json::from_str(text) {
                Ok(spec) => spec,
                Err(e) => {
                    return write_json(stream, 400, &error_body(&format!("invalid job JSON: {e}")))
                }
            };
            match supervisor.submit(spec) {
                Ok(id) => write_json(stream, 202, &format!("{{\"id\":{id}}}")),
                Err(e) => {
                    let status = status_for(&e);
                    write_json(stream, status, &error_body(&e.to_string()))
                }
            }
        }
        ("GET", "/healthz") => {
            let stats = supervisor.stats();
            let (status, label) = if stats.draining {
                (503, "draining")
            } else {
                (200, "ok")
            };
            let body = format!(
                "{{\"status\":\"{label}\",\"stats\":{}}}",
                serde_json::to_string(&stats).unwrap_or_else(|_| "{}".into())
            );
            write_json(stream, status, &body)
        }
        ("GET", "/metrics") => {
            let body = metrics_text(&supervisor.stats());
            write_response(stream, 200, "text/plain; version=0.0.4", body.as_bytes())
        }
        ("POST", "/shutdown") => {
            stop.store(true, Ordering::SeqCst);
            supervisor.drain();
            write_json(stream, 200, "{\"status\":\"draining\"}")
        }
        ("GET", _) if path.starts_with("/jobs/") => match parse_id(path) {
            Some(id) => match supervisor.status(id) {
                Some(view) => {
                    let body = serde_json::to_string(&view).unwrap_or_else(|_| "{}".into());
                    write_json(stream, 200, &body)
                }
                None => write_json(stream, 404, &error_body(&format!("unknown job {id}"))),
            },
            None => write_json(stream, 400, &error_body("job id must be an integer")),
        },
        ("DELETE", _) if path.starts_with("/jobs/") => match parse_id(path) {
            Some(id) => match supervisor.cancel(id) {
                Ok(state) => write_json(
                    stream,
                    200,
                    &format!(
                        "{{\"id\":{id},\"state\":{}}}",
                        serde_json::to_string(&state).unwrap_or_else(|_| "null".into())
                    ),
                ),
                Err(e) => write_json(stream, status_for(&e), &error_body(&e.to_string())),
            },
            None => write_json(stream, 400, &error_body("job id must be an integer")),
        },
        ("POST" | "DELETE" | "PUT" | "PATCH", "/healthz" | "/metrics")
        | ("GET" | "PUT" | "PATCH", "/jobs" | "/shutdown") => {
            write_json(stream, 405, &error_body("method not allowed"))
        }
        _ => write_json(stream, 404, &error_body("no such route")),
    }
}

fn parse_id(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?.parse().ok()
}

fn status_for(e: &ServeError) -> u16 {
    match e {
        ServeError::Overloaded { .. } => 429,
        ServeError::Draining => 503,
        ServeError::UnknownJob(_) => 404,
        ServeError::AlreadyTerminal { .. } => 409,
        ServeError::InvalidSpec(_) => 400,
        ServeError::Io(_) => 500,
    }
}

fn error_body(message: &str) -> String {
    format!(
        "{{\"error\":{}}}",
        serde_json::to_string(&message.to_owned()).unwrap_or_else(|_| "\"error\"".into())
    )
}

/// Prometheus exposition: the telemetry layer's aggregates (empty while
/// telemetry is disabled) followed by the supervisor's always-live
/// mirrored counters.
fn metrics_text(stats: &ServeStats) -> String {
    let mut out = chiron_telemetry::prometheus_text();
    if !out.is_empty() && !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("# serve supervisor state (authoritative)\n");
    let rows: [(&str, u64); 11] = [
        ("serve_admitted_total", stats.admitted),
        ("serve_rejected_total", stats.rejected),
        ("serve_retries_total", stats.retries),
        ("serve_resumed_total", stats.resumed),
        ("serve_deadline_evictions_total", stats.deadline_evictions),
        ("serve_completed_total", stats.completed),
        ("serve_failed_total", stats.failed),
        ("serve_cancelled_total", stats.cancelled),
        ("serve_queue_depth", stats.queue_depth as u64),
        ("serve_peak_queue_depth", stats.peak_queue_depth as u64),
        ("serve_inflight", stats.inflight as u64),
    ];
    for (name, value) in rows {
        out.push_str(&format!("{name} {value}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supervisor::unique_state_dir;
    use std::io::{Read, Write};

    fn http(addr: SocketAddr, raw: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(raw.as_bytes()).expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, b)| b.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
        http(
            addr,
            &format!(
                "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    #[test]
    fn daemon_serves_submit_poll_health_metrics_shutdown() {
        let cfg = ServeConfig {
            workers: 1,
            max_inflight: 1,
            state_dir: unique_state_dir("daemon-http"),
            ..ServeConfig::default()
        };
        let daemon = Daemon::start(cfg).expect("start");
        let addr = daemon.addr();

        let (status, body) = post(
            addr,
            "/jobs",
            "{\"kind\":\"Eval\",\"dataset\":\"tiny\",\"nodes\":3,\"budget\":20.0}",
        );
        assert_eq!(status, 202, "submit accepted: {body}");
        assert!(body.contains("\"id\":1"), "body: {body}");

        let (status, body) = post(addr, "/jobs", "{\"kind\":\"Eval\"");
        assert_eq!(status, 400, "truncated JSON rejected: {body}");

        let state = daemon
            .supervisor()
            .wait(1, Duration::from_secs(60))
            .expect("job known");
        assert!(state.is_terminal(), "job finished: {state:?}");

        let (status, body) = http(addr, "GET /jobs/1 HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("Completed"), "body: {body}");
        let (status, _) = http(addr, "GET /jobs/99 HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = http(addr, "GET /nope HTTP/1.1\r\n\r\n");
        assert_eq!(status, 404);

        let (status, body) = http(addr, "GET /healthz HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "body: {body}");

        let (status, body) = http(addr, "GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("serve_admitted_total 1"), "body: {body}");
        assert!(body.contains("serve_completed_total 1"), "body: {body}");

        let (status, body) = post(addr, "/shutdown", "");
        assert_eq!(status, 200);
        assert!(body.contains("draining"), "body: {body}");
        daemon.join(Duration::from_secs(10));
    }
}
