//! A deliberately small HTTP/1.1 subset over `std::net` — just enough for
//! the daemon's JSON API. No keep-alive, no chunked encoding, no TLS:
//! one request per connection, `Content-Length` bodies only, bounded
//! header and body sizes so a misbehaving client cannot exhaust memory.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Reject request heads larger than this.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Reject request bodies larger than this.
pub const MAX_BODY_BYTES: usize = 256 * 1024;

/// A parsed request: method, path (query string stripped), body bytes.
#[derive(Debug)]
pub struct Request {
    /// Uppercase HTTP method.
    pub method: String,
    /// Request path without any query string.
    pub path: String,
    /// Raw body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

/// Why a request could not be parsed; each maps to a 4xx response.
#[derive(Debug)]
pub enum ParseError {
    /// Socket-level failure (including read timeout).
    Io(std::io::Error),
    /// The request line or headers were malformed.
    Malformed(&'static str),
    /// The head or the declared body exceeded its size bound.
    TooLarge(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "request I/O error: {e}"),
            ParseError::Malformed(what) => write!(f, "malformed request: {what}"),
            ParseError::TooLarge(what) => write!(f, "request too large: {what}"),
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Reads and parses one request from the stream.
///
/// # Errors
///
/// [`ParseError::Io`] on socket failure or timeout, `Malformed` on a
/// broken request line, `TooLarge` when a bound is exceeded.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, ParseError> {
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    // Byte-at-a-time until CRLFCRLF: request heads are tiny and this keeps
    // the body boundary exact without buffering past it.
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge("request head"));
        }
        match stream.read(&mut byte).map_err(ParseError::Io)? {
            0 => return Err(ParseError::Malformed("connection closed mid-head")),
            _ => head.push(byte[0]),
        }
    }
    let head_text = String::from_utf8_lossy(&head);
    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or(ParseError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or(ParseError::Malformed("missing request target"))?;
    let path = target.split('?').next().unwrap_or(target).to_owned();

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ParseError::Malformed("bad content-length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge("request body"));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(ParseError::Io)?;
    Ok(Request { method, path, body })
}

/// Writes a complete response (status line, minimal headers, body) and
/// flushes the stream.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let reason = reason_phrase(status);
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_json(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write_response(stream, status, "application/json", body.as_bytes())
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn round_trip(raw: &[u8]) -> Result<Request, ParseError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("send");
        });
        let (mut conn, _) = listener.accept().expect("accept");
        let parsed = read_request(&mut conn);
        writer.join().expect("writer thread");
        parsed
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let req = round_trip(
            b"POST /jobs?priority=high HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        )
        .expect("parse");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs", "query string is stripped");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_bodyless_get() {
        let req = round_trip(b"GET /healthz HTTP/1.1\r\n\r\n").expect("parse");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_malformed_and_oversized() {
        assert!(matches!(
            round_trip(b"\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        let huge = format!(
            "POST /jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            round_trip(huge.as_bytes()),
            Err(ParseError::TooLarge(_))
        ));
    }
}
