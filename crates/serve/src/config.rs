//! Daemon configuration, with `CHIRON_SERVE_*` environment defaults.

use chiron_telemetry::RuntimeConfig;
use std::path::PathBuf;

/// Everything the daemon and supervisor need to know, with conservative
/// defaults. Build one with [`ServeConfig::default`] or
/// [`ServeConfig::from_runtime`] and override fields directly.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 picks an ephemeral port (the bound address is
    /// reported by the daemon).
    pub addr: String,
    /// Supervised worker threads executing jobs.
    pub workers: usize,
    /// Admission bound: submissions beyond this many queued jobs are shed
    /// with a typed `Overloaded` error instead of growing the queue.
    pub queue_cap: usize,
    /// At most this many jobs run concurrently (≤ `workers` is typical).
    pub max_inflight: usize,
    /// Retries per job after a transient failure (panic, checkpoint I/O).
    pub retry_max: usize,
    /// Base retry backoff in milliseconds; attempt `k` waits
    /// `base * 2^(k-1)` plus deterministic jitter, capped.
    pub backoff_base_ms: u64,
    /// Backoff cap in milliseconds.
    pub backoff_cap_ms: u64,
    /// Episodes between job checkpoints — also the supervision granularity
    /// for deadlines, cancellation, and drain.
    pub checkpoint_every: usize,
    /// Default per-job wall-clock deadline (`None` = no deadline unless
    /// the spec sets one).
    pub default_deadline_ms: Option<u64>,
    /// Directory holding per-job `RunCheckpoint` files.
    pub state_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_cap: 64,
            max_inflight: 2,
            retry_max: 3,
            backoff_base_ms: 100,
            backoff_cap_ms: 5_000,
            checkpoint_every: 5,
            default_deadline_ms: None,
            state_dir: std::env::temp_dir().join(format!("chiron-serve-{}", std::process::id())),
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by whatever `CHIRON_SERVE_*` variables the
    /// ambient [`RuntimeConfig`] carries. Zero values for counts are
    /// clamped to 1 (a daemon with no workers or no queue is useless).
    #[must_use]
    pub fn from_runtime(rt: &RuntimeConfig) -> Self {
        let mut cfg = Self::default();
        if let Some(addr) = &rt.serve_addr {
            cfg.addr = addr.clone();
        }
        if let Some(workers) = rt.serve_workers {
            cfg.workers = workers.max(1);
        }
        cfg.max_inflight = cfg.workers;
        if let Some(cap) = rt.serve_queue_cap {
            cfg.queue_cap = cap.max(1);
        }
        if let Some(inflight) = rt.serve_inflight {
            cfg.max_inflight = inflight.max(1);
        }
        if let Some(retries) = rt.serve_retry_max {
            cfg.retry_max = retries;
        }
        if let Some(ms) = rt.serve_backoff_ms {
            cfg.backoff_base_ms = ms.max(1);
        }
        if let Some(every) = rt.serve_ckpt_every {
            cfg.checkpoint_every = every.max(1);
        }
        if let Some(ms) = rt.serve_deadline_ms {
            cfg.default_deadline_ms = Some(ms);
        }
        if let Some(dir) = &rt.serve_state_dir {
            cfg.state_dir = PathBuf::from(dir);
        }
        cfg
    }

    /// Backoff before retry attempt `attempt` (1-based) of job `id`:
    /// exponential in the attempt with a deterministic jitter derived from
    /// `(seed, id, attempt)` — reproducible, yet decorrelated across jobs
    /// so a burst of failures does not retry in lockstep.
    #[must_use]
    pub fn backoff_ms(&self, seed: u64, id: u64, attempt: usize) -> u64 {
        let shift = attempt.saturating_sub(1).min(16) as u32;
        let base = self
            .backoff_base_ms
            .saturating_mul(1u64 << shift)
            .min(self.backoff_cap_ms);
        let jitter = splitmix64(seed ^ id.rotate_left(17) ^ attempt as u64) % self.backoff_base_ms;
        base.saturating_add(jitter).min(self.backoff_cap_ms)
    }
}

/// SplitMix64 — the workspace's standard cheap stateless mixer.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let cfg = ServeConfig {
            backoff_base_ms: 100,
            backoff_cap_ms: 1_000,
            ..ServeConfig::default()
        };
        let a = cfg.backoff_ms(7, 1, 1);
        assert_eq!(a, cfg.backoff_ms(7, 1, 1), "same inputs, same delay");
        assert_ne!(a, cfg.backoff_ms(7, 2, 1), "jitter decorrelates jobs");
        for attempt in 1..12 {
            let d = cfg.backoff_ms(7, 1, attempt);
            assert!(d <= 1_000, "attempt {attempt} exceeded cap: {d}");
            assert!(d >= 100, "attempt {attempt} below base: {d}");
        }
        // Exponential growth until the cap dominates.
        assert!(cfg.backoff_ms(7, 1, 2) >= 200);
    }

    #[test]
    fn runtime_overrides_apply_and_clamp() {
        std::env::set_var("CHIRON_SERVE_WORKERS", "0");
        std::env::set_var("CHIRON_SERVE_QUEUE_CAP", "7");
        std::env::set_var("CHIRON_SERVE_BACKOFF_MS", "250");
        let rt = RuntimeConfig::from_env();
        std::env::remove_var("CHIRON_SERVE_WORKERS");
        std::env::remove_var("CHIRON_SERVE_QUEUE_CAP");
        std::env::remove_var("CHIRON_SERVE_BACKOFF_MS");
        let cfg = ServeConfig::from_runtime(&rt);
        assert_eq!(cfg.workers, 1, "zero workers clamps to 1");
        assert_eq!(cfg.queue_cap, 7);
        assert_eq!(cfg.backoff_base_ms, 250);
        assert_eq!(cfg.max_inflight, cfg.workers);
    }
}
