//! Job specifications, lifecycle states, and the typed errors of the serve
//! layer.
//!
//! A job travels `Queued → Running → {Completed, Failed, Cancelled}`, with
//! a `Running → Backoff → Queued` loop for transient failures (panics,
//! checkpoint I/O errors) and a drain detour `Running → Queued` when the
//! daemon stops. Every terminal outcome is typed: HTTP surfaces a
//! [`ServeError`], the supervisor records a [`JobError`] — strings appear
//! only at the display boundary.

use chiron::ResumeError;
use serde::{Deserialize, Serialize};

/// What a submitted job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    /// Train a Chiron mechanism for `episodes` episodes (checkpointed,
    /// crash-resumable), then evaluate it once.
    Train,
    /// Run one deterministic evaluation episode of an untrained policy.
    Eval,
}

/// Scheduling priority; FIFO order within a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Priority {
    /// Served before everything else.
    High,
    /// The default class.
    Normal,
    /// Served only when nothing else is ready.
    Low,
}

impl Priority {
    /// Scheduling rank; lower runs first.
    #[must_use]
    pub fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }
}

/// A submitted job: the experiment to run plus scheduling knobs.
///
/// `kind`, `dataset`, `nodes`, and `budget` are required; everything else
/// defaults (`episodes` is required for `Train` jobs). The JSON accepted
/// by `POST /jobs` is exactly this struct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSpec {
    /// Train or Eval.
    pub kind: JobKind,
    /// Dataset name: `mnist` | `fashion` | `cifar` | `tiny`.
    pub dataset: String,
    /// Fleet size.
    pub nodes: usize,
    /// Total budget η.
    pub budget: f64,
    /// Training episodes (required for `Train`, ignored for `Eval`).
    pub episodes: Option<usize>,
    /// Master seed (default 42).
    pub seed: Option<u64>,
    /// Scheduling priority (default `Normal`).
    pub priority: Option<Priority>,
    /// Wall-clock deadline for the whole job, enforced at supervision
    /// boundaries; `None` uses the daemon default (possibly none).
    pub deadline_ms: Option<u64>,
    /// Hyperparameter profile: `paper` (default) or `fast`.
    pub profile: Option<String>,
}

impl JobSpec {
    /// A minimal evaluation job, handy for smoke tests.
    #[must_use]
    pub fn eval(dataset: &str, nodes: usize, budget: f64, seed: u64) -> Self {
        Self {
            kind: JobKind::Eval,
            dataset: dataset.to_owned(),
            nodes,
            budget,
            episodes: None,
            seed: Some(seed),
            priority: None,
            deadline_ms: None,
            profile: None,
        }
    }

    /// A training job with the `fast` profile (test-sized networks).
    #[must_use]
    pub fn train_fast(
        dataset: &str,
        nodes: usize,
        budget: f64,
        episodes: usize,
        seed: u64,
    ) -> Self {
        Self {
            kind: JobKind::Train,
            dataset: dataset.to_owned(),
            nodes,
            budget,
            episodes: Some(episodes),
            seed: Some(seed),
            priority: None,
            deadline_ms: None,
            profile: Some("fast".into()),
        }
    }

    /// The effective priority.
    #[must_use]
    pub fn priority(&self) -> Priority {
        self.priority.unwrap_or(Priority::Normal)
    }

    /// The effective seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(42)
    }

    /// Validates the spec at admission time.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidSpec`] naming the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), ServeError> {
        let invalid = |msg: String| Err(ServeError::InvalidSpec(msg));
        match self.dataset.as_str() {
            "mnist" | "fashion" | "fashion-mnist" | "cifar" | "cifar-10" | "cifar10" | "tiny" => {}
            other => {
                return invalid(format!(
                    "unknown dataset '{other}' (expected mnist | fashion | cifar | tiny)"
                ))
            }
        }
        if self.nodes == 0 {
            return invalid("nodes must be at least 1".into());
        }
        if !(self.budget > 0.0 && self.budget.is_finite()) {
            return invalid("budget must be positive and finite".into());
        }
        if self.kind == JobKind::Train && self.episodes.unwrap_or(0) == 0 {
            return invalid("train jobs need episodes >= 1".into());
        }
        if let Some(profile) = &self.profile {
            if profile != "paper" && profile != "fast" {
                return invalid(format!(
                    "unknown profile '{profile}' (expected paper | fast)"
                ));
            }
        }
        Ok(())
    }
}

/// Where a job is in its lifecycle. Serialized verbatim in `GET /jobs/:id`
/// responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum JobState {
    /// Waiting in the admission queue (or re-queued by a drain).
    Queued,
    /// A worker is executing the job.
    Running {
        /// 1-based attempt number.
        attempt: usize,
    },
    /// A transient failure occurred; the job re-enters the queue after a
    /// backoff delay.
    Backoff {
        /// The attempt that failed.
        attempt: usize,
        /// Delay before the job becomes runnable again.
        retry_in_ms: u64,
    },
    /// Finished successfully; the result is attached to the record.
    Completed,
    /// Failed permanently (typed error rendered for display).
    Failed {
        /// Stable error-kind slug (`panicked`, `deadline`, `resume`,
        /// `invalid`).
        kind: String,
        /// Human-readable failure description.
        error: String,
    },
    /// Cancelled by `DELETE /jobs/:id`.
    Cancelled,
}

impl JobState {
    /// Whether the job can no longer change state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

/// What a finished job produced.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Per-episode training rewards (empty for `Eval` jobs).
    pub rewards: Vec<f64>,
    /// Final evaluation accuracy.
    pub final_accuracy: f64,
    /// Evaluation rounds completed.
    pub rounds: usize,
    /// Budget spent in the evaluation episode.
    pub spent: f64,
}

/// Why a single job attempt (or the whole job) failed.
#[derive(Debug)]
pub enum JobError {
    /// The spec cannot produce a runnable experiment (permanent).
    Invalid(String),
    /// The recovery layer failed — checkpoint I/O or restore (transient:
    /// the next attempt resumes from the last good generation).
    Resume(ResumeError),
    /// The job panicked; the panic was caught at the job boundary
    /// (transient: the next attempt resumes from the last checkpoint).
    Panicked(String),
    /// The wall-clock deadline passed at a supervision boundary
    /// (permanent).
    DeadlineExceeded {
        /// Elapsed job time when the deadline was observed.
        elapsed_ms: u64,
        /// The configured deadline.
        deadline_ms: u64,
    },
    /// The job was cancelled mid-run (terminal, not a failure).
    Cancelled,
}

impl JobError {
    /// Whether a retry could succeed.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, JobError::Resume(_) | JobError::Panicked(_))
    }

    /// Stable slug for the failure kind.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Invalid(_) => "invalid",
            JobError::Resume(_) => "resume",
            JobError::Panicked(_) => "panicked",
            JobError::DeadlineExceeded { .. } => "deadline",
            JobError::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            JobError::Resume(e) => write!(f, "recovery failed: {e}"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::DeadlineExceeded {
                elapsed_ms,
                deadline_ms,
            } => write!(
                f,
                "deadline exceeded: {elapsed_ms} ms elapsed > {deadline_ms} ms allowed"
            ),
            JobError::Cancelled => f.write_str("job cancelled"),
        }
    }
}

impl std::error::Error for JobError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JobError::Resume(e) => Some(e),
            _ => None,
        }
    }
}

/// Typed failures of the serve surface (admission, lookup, lifecycle).
#[derive(Debug)]
pub enum ServeError {
    /// Admission control shed the submission: the queue is at its
    /// configured bound. Maps to HTTP 429.
    Overloaded {
        /// Jobs currently queued.
        queued: usize,
        /// The configured queue bound.
        cap: usize,
    },
    /// The daemon is draining and accepts no new work. Maps to HTTP 503.
    Draining,
    /// No job with that id exists. Maps to HTTP 404.
    UnknownJob(u64),
    /// The job is already in a terminal state. Maps to HTTP 409.
    AlreadyTerminal {
        /// The job id.
        id: u64,
        /// The terminal state it is in.
        state: JobState,
    },
    /// The submitted spec was rejected. Maps to HTTP 400.
    InvalidSpec(String),
    /// An underlying I/O operation (bind, state dir) failed.
    Io(std::io::Error),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { queued, cap } => {
                write!(f, "overloaded: {queued} jobs queued (cap {cap})")
            }
            ServeError::Draining => f.write_str("daemon is draining"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::AlreadyTerminal { id, state } => {
                write!(f, "job {id} is already terminal ({state:?})")
            }
            ServeError::InvalidSpec(msg) => write!(f, "invalid job spec: {msg}"),
            ServeError::Io(e) => write!(f, "serve I/O error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_names_the_violation() {
        let mut spec = JobSpec::eval("mnist", 3, 40.0, 1);
        spec.validate().expect("valid");
        spec.dataset = "imagenet".into();
        assert!(spec.validate().unwrap_err().to_string().contains("dataset"));

        let mut spec = JobSpec::train_fast("tiny", 3, 40.0, 2, 1);
        spec.validate().expect("valid");
        spec.episodes = None;
        assert!(spec
            .validate()
            .unwrap_err()
            .to_string()
            .contains("episodes"));
        spec.episodes = Some(2);
        spec.budget = f64::NAN;
        assert!(spec.validate().unwrap_err().to_string().contains("budget"));
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec::train_fast("mnist", 5, 100.0, 10, 7);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: JobSpec = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, spec);
        // Optional fields may be omitted entirely on the wire.
        let minimal: JobSpec = serde_json::from_str(
            "{\"kind\":\"Eval\",\"dataset\":\"tiny\",\"nodes\":3,\"budget\":30.0}",
        )
        .expect("minimal spec parses");
        assert_eq!(minimal.seed(), 42);
        assert_eq!(minimal.priority(), Priority::Normal);
        minimal.validate().expect("valid");
    }

    #[test]
    fn priorities_order_and_states_classify() {
        assert!(Priority::High.rank() < Priority::Normal.rank());
        assert!(Priority::Normal.rank() < Priority::Low.rank());
        assert!(!JobState::Queued.is_terminal());
        assert!(!JobState::Running { attempt: 1 }.is_terminal());
        assert!(JobState::Completed.is_terminal());
        assert!(JobState::Cancelled.is_terminal());
    }

    #[test]
    fn job_errors_classify_transience() {
        assert!(JobError::Panicked("boom".into()).is_transient());
        assert!(!JobError::Invalid("bad".into()).is_transient());
        assert!(!JobError::DeadlineExceeded {
            elapsed_ms: 10,
            deadline_ms: 5
        }
        .is_transient());
        assert!(!JobError::Cancelled.is_transient());
        assert_eq!(JobError::Cancelled.kind(), "cancelled");
    }
}
