//! Bounded FIFO + priority admission queue.
//!
//! The queue is small (at most `queue_cap` entries) so a sorted-scan `Vec`
//! beats a heap in both simplicity and cache behaviour. Ordering is
//! `(priority rank, submission sequence)` — strict FIFO within a priority
//! class — and retry entries may carry a `ready_at` instant that hides
//! them from `pop_ready` until their backoff elapses.

use crate::job::ServeError;
use std::time::Instant;

#[derive(Debug, Clone)]
struct Entry {
    id: u64,
    rank: u8,
    seq: u64,
    ready_at: Option<Instant>,
}

/// Admission-controlled scheduling queue of job ids.
#[derive(Debug)]
pub struct BoundedQueue {
    entries: Vec<Entry>,
    cap: usize,
    next_seq: u64,
}

impl BoundedQueue {
    /// A queue that admits at most `cap` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            entries: Vec::new(),
            cap: cap.max(1),
            next_seq: 0,
        }
    }

    /// Admits a new job.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Overloaded`] when the queue is at its bound;
    /// the entry is not admitted.
    pub fn push(&mut self, id: u64, rank: u8) -> Result<(), ServeError> {
        if self.entries.len() >= self.cap {
            return Err(ServeError::Overloaded {
                queued: self.entries.len(),
                cap: self.cap,
            });
        }
        self.push_unbounded(id, rank, None);
        Ok(())
    }

    /// Re-queues a job the supervisor already owns (retry after backoff,
    /// or a drain parking a running job). Bypasses the admission bound:
    /// shedding work we already accepted would break the retry contract.
    pub fn push_retry(&mut self, id: u64, rank: u8, ready_at: Option<Instant>) {
        self.push_unbounded(id, rank, ready_at);
    }

    fn push_unbounded(&mut self, id: u64, rank: u8, ready_at: Option<Instant>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(Entry {
            id,
            rank,
            seq,
            ready_at,
        });
    }

    /// Removes and returns the runnable job with the best
    /// `(rank, sequence)` order, skipping entries still in backoff.
    pub fn pop_ready(&mut self, now: Instant) -> Option<u64> {
        let best = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.ready_at.is_none_or(|t| t <= now))
            .min_by_key(|(_, e)| (e.rank, e.seq))
            .map(|(i, _)| i)?;
        Some(self.entries.swap_remove(best).id)
    }

    /// The earliest instant at which a currently-backing-off entry becomes
    /// runnable, if every queued entry is waiting on a backoff.
    #[must_use]
    pub fn next_ready_at(&self) -> Option<Instant> {
        self.entries.iter().filter_map(|e| e.ready_at).min()
    }

    /// Whether any entry is immediately runnable at `now`.
    #[must_use]
    pub fn has_ready(&self, now: Instant) -> bool {
        self.entries
            .iter()
            .any(|e| e.ready_at.is_none_or(|t| t <= now))
    }

    /// Queued entries (runnable or backing off).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Drops the entry for `id`, returning whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.entries.iter().position(|e| e.id == id) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fifo_within_class_priority_across() {
        let mut q = BoundedQueue::new(8);
        q.push(1, 1).expect("admit");
        q.push(2, 1).expect("admit");
        q.push(3, 0).expect("admit");
        q.push(4, 2).expect("admit");
        let now = Instant::now();
        assert_eq!(q.pop_ready(now), Some(3), "high priority first");
        assert_eq!(q.pop_ready(now), Some(1), "then FIFO within normal");
        assert_eq!(q.pop_ready(now), Some(2));
        assert_eq!(q.pop_ready(now), Some(4), "low priority last");
        assert_eq!(q.pop_ready(now), None);
    }

    #[test]
    fn overload_is_typed_and_non_destructive() {
        let mut q = BoundedQueue::new(2);
        q.push(1, 1).expect("admit");
        q.push(2, 1).expect("admit");
        match q.push(3, 0) {
            Err(ServeError::Overloaded { queued: 2, cap: 2 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.depth(), 2, "rejected push must not grow the queue");
        // Retries bypass the bound — the job was already admitted once.
        q.push_retry(9, 1, None);
        assert_eq!(q.depth(), 3);
    }

    #[test]
    fn backoff_entries_hide_until_ready() {
        let mut q = BoundedQueue::new(4);
        let now = Instant::now();
        let later = now + Duration::from_millis(50);
        q.push_retry(1, 0, Some(later));
        q.push(2, 2).expect("admit");
        assert_eq!(
            q.pop_ready(now),
            Some(2),
            "backing-off high-priority entry is skipped"
        );
        assert_eq!(q.pop_ready(now), None);
        assert!(!q.has_ready(now));
        assert_eq!(q.next_ready_at(), Some(later));
        assert_eq!(q.pop_ready(later), Some(1));
    }

    #[test]
    fn remove_reports_presence() {
        let mut q = BoundedQueue::new(4);
        q.push(1, 1).expect("admit");
        assert!(q.remove(1));
        assert!(!q.remove(1));
        assert_eq!(q.depth(), 0);
    }
}
