//! Chiron as a long-running service: a fault-tolerant daemon that accepts
//! training and evaluation jobs over a std-only HTTP/1.1 API and runs
//! them under supervision.
//!
//! The crate is organised around one invariant: **every failure mode is
//! typed, bounded, and recoverable**.
//!
//! - [`queue`] — bounded FIFO + priority admission queue; beyond the
//!   configured depth, submissions are shed with a typed
//!   [`ServeError::Overloaded`] (HTTP 429) instead of growing memory.
//! - [`supervisor`] — worker pool with a crash barrier per attempt:
//!   panics become [`JobError::Panicked`], transient failures retry with
//!   deterministic exponential backoff, training resumes
//!   bitwise-identically from `chiron::recovery` checkpoints, deadlines
//!   are enforced at checkpoint boundaries.
//! - [`daemon`] — the HTTP surface over `std::net::TcpListener`: submit,
//!   poll, cancel, `/healthz`, `/metrics`, drain-then-stop shutdown. No
//!   external dependencies.
//! - [`chaos`] — a seeded, fire-once fault plan (worker kills, checkpoint
//!   I/O sabotage, stragglers) consulted at supervision boundaries, so
//!   crash-recovery paths are exercised deterministically in tests.
//! - [`shutdown`] — process-wide SIGINT/SIGTERM flag shared with the CLI
//!   so both `chiron train` and `chiron serve` flush state before exit.
//!
//! # Example
//!
//! ```no_run
//! use chiron_serve::{Daemon, JobSpec, ServeConfig};
//! use std::time::Duration;
//!
//! let daemon = Daemon::start(ServeConfig::default()).unwrap();
//! println!("listening on {}", daemon.addr());
//! let id = daemon.supervisor().submit(JobSpec::eval("tiny", 3, 20.0, 7)).unwrap();
//! let state = daemon.supervisor().wait(id, Duration::from_secs(60));
//! println!("job {id}: {state:?}");
//! daemon.join(Duration::from_secs(10));
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod daemon;
pub mod http;
pub mod job;
pub mod queue;
pub mod shutdown;
pub mod supervisor;

pub use chaos::{Fault, FaultPlan};
pub use config::ServeConfig;
pub use daemon::Daemon;
pub use job::{JobError, JobKind, JobResult, JobSpec, JobState, Priority, ServeError};
pub use queue::BoundedQueue;
pub use supervisor::{JobView, ServeStats, Supervisor};
