//! The supervised job runner.
//!
//! A fixed pool of worker threads pulls jobs from the [`BoundedQueue`] and
//! executes them with a crash barrier around every attempt:
//!
//! - **Panics never escape.** Each attempt runs under `catch_unwind`; a
//!   panicking job becomes a typed [`JobError::Panicked`] and the worker
//!   thread lives on.
//! - **Transient failures retry with backoff.** Panics and checkpoint I/O
//!   errors re-queue the job after a deterministic exponential backoff
//!   (see [`ServeConfig::backoff_ms`]); permanent failures (bad spec,
//!   deadline) fail the job immediately.
//! - **Training is resumable.** Train jobs run through
//!   `Chiron::train_recoverable` in chunks of `checkpoint_every`
//!   episodes. Every chunk boundary is a supervision point: cancellation,
//!   drain, and deadlines are checked there, and a checkpoint is already
//!   on disk — so a retry (or a daemon restart pointed at the same state
//!   directory) resumes bitwise-identically to an uninterrupted run.
//! - **Deadlines are enforced at boundaries,** never pre-emptively, so an
//!   evicted job still leaves a valid checkpoint behind.

use crate::chaos::FaultPlan;
use crate::config::ServeConfig;
use crate::job::{JobError, JobResult, JobSpec, JobState, Priority, ServeError};
use crate::queue::BoundedQueue;
use chiron::{Chiron, ChironConfig, EpisodeRun, RecoveryOptions, RunCheckpoint};
use chiron_data::DatasetKind;
use chiron_fedsim::metrics::EventLog;
use chiron_fedsim::{EdgeLearningEnv, EnvConfig};
use chiron_telemetry::{Counter, Histogram};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

static ADMITTED: Counter = Counter::new("serve.admitted");
static REJECTED: Counter = Counter::new("serve.rejected");
static RETRIES: Counter = Counter::new("serve.retries");
static RESUMED: Counter = Counter::new("serve.resumed");
static DEADLINE_EVICTIONS: Counter = Counter::new("serve.deadline_evictions");
static QUEUE_DEPTH: Histogram = Histogram::new("serve.queue_depth");

/// Point-in-time view of a job, as served by `GET /jobs/:id`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobView {
    /// The job id assigned at admission.
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Attempts started so far.
    pub attempts: usize,
    /// The result, once completed.
    pub result: Option<JobResult>,
}

/// Counters mirrored from the supervisor's authoritative state (always
/// live, even when the telemetry layer is disabled). Served by
/// `/healthz` and rendered into `/metrics`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Jobs accepted into the queue.
    pub admitted: u64,
    /// Submissions shed by admission control.
    pub rejected: u64,
    /// Transient-failure retries scheduled.
    pub retries: u64,
    /// Attempts that resumed from an on-disk checkpoint.
    pub resumed: u64,
    /// Jobs evicted for exceeding their deadline.
    pub deadline_evictions: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs failed permanently.
    pub failed: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Current queue depth.
    pub queue_depth: usize,
    /// High-water mark of the queue depth.
    pub peak_queue_depth: usize,
    /// Jobs currently executing.
    pub inflight: usize,
    /// Whether the daemon is draining.
    pub draining: bool,
}

struct Job {
    spec: JobSpec,
    state: JobState,
    attempts: usize,
    first_started: Option<Instant>,
    cancel_requested: bool,
    result: Option<JobResult>,
}

struct SupState {
    queue: BoundedQueue,
    jobs: HashMap<u64, Job>,
    next_id: u64,
    inflight: usize,
    draining: bool,
    stopping: bool,
    stats: ServeStats,
}

struct Shared {
    cfg: ServeConfig,
    state: Mutex<SupState>,
    cv: Condvar,
    chaos: Option<FaultPlan>,
}

impl Shared {
    /// Locks the supervisor state, recovering from poisoning: a worker
    /// panic must never brick the daemon, and all state mutations are
    /// single assignments that stay consistent even if a panic lands
    /// between them.
    fn lock(&self) -> MutexGuard<'_, SupState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn backoff_seed(&self) -> u64 {
        self.chaos.as_ref().map_or(0x5e4e_5eed, FaultPlan::seed)
    }
}

/// The supervised job runner: admission queue + worker pool + job table.
pub struct Supervisor {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Supervisor {
    /// Starts the worker pool.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the state directory cannot be
    /// created.
    pub fn start(cfg: ServeConfig) -> Result<Self, ServeError> {
        Self::start_inner(cfg, None)
    }

    /// Starts the worker pool with a chaos [`FaultPlan`] installed — the
    /// deterministic fault-injection hook used by the chaos tests.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Io`] if the state directory cannot be
    /// created.
    pub fn start_with_chaos(cfg: ServeConfig, chaos: FaultPlan) -> Result<Self, ServeError> {
        Self::start_inner(cfg, Some(chaos))
    }

    fn start_inner(cfg: ServeConfig, chaos: Option<FaultPlan>) -> Result<Self, ServeError> {
        std::fs::create_dir_all(&cfg.state_dir)?;
        let shared = Arc::new(Shared {
            state: Mutex::new(SupState {
                queue: BoundedQueue::new(cfg.queue_cap),
                jobs: HashMap::new(),
                next_id: 1,
                inflight: 0,
                draining: false,
                stopping: false,
                stats: ServeStats::default(),
            }),
            cv: Condvar::new(),
            chaos,
            cfg,
        });
        let workers = (0..shared.cfg.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .map_err(ServeError::Io)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shared, workers })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    /// Admits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidSpec`] for a spec that fails validation,
    /// [`ServeError::Draining`] once a drain has begun, and
    /// [`ServeError::Overloaded`] when the queue is at its bound.
    pub fn submit(&self, spec: JobSpec) -> Result<u64, ServeError> {
        spec.validate()?;
        let mut st = self.shared.lock();
        if st.draining || st.stopping {
            return Err(ServeError::Draining);
        }
        let id = st.next_id;
        if let Err(e) = st.queue.push(id, spec.priority().rank()) {
            st.stats.rejected += 1;
            REJECTED.add(1);
            return Err(e);
        }
        st.next_id += 1;
        st.stats.admitted += 1;
        ADMITTED.add(1);
        let depth = st.queue.depth();
        st.stats.queue_depth = depth;
        st.stats.peak_queue_depth = st.stats.peak_queue_depth.max(depth);
        QUEUE_DEPTH.record(depth as f64);
        st.jobs.insert(
            id,
            Job {
                spec,
                state: JobState::Queued,
                attempts: 0,
                first_started: None,
                cancel_requested: false,
                result: None,
            },
        );
        drop(st);
        self.shared.cv.notify_all();
        Ok(id)
    }

    /// A point-in-time view of a job, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<JobView> {
        let st = self.shared.lock();
        st.jobs.get(&id).map(|job| JobView {
            id,
            state: job.state.clone(),
            attempts: job.attempts,
            result: job.result.clone(),
        })
    }

    /// Cancels a job: queued (or backing-off) jobs are removed
    /// immediately; running jobs stop at their next supervision boundary.
    /// Returns the state after the cancel took effect.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an unknown id and
    /// [`ServeError::AlreadyTerminal`] for a finished job.
    pub fn cancel(&self, id: u64) -> Result<JobState, ServeError> {
        let mut st = self.shared.lock();
        let job = st.jobs.get_mut(&id).ok_or(ServeError::UnknownJob(id))?;
        if job.state.is_terminal() {
            return Err(ServeError::AlreadyTerminal {
                id,
                state: job.state.clone(),
            });
        }
        let state = if matches!(job.state, JobState::Running { .. }) {
            job.cancel_requested = true;
            job.state.clone()
        } else {
            job.state = JobState::Cancelled;
            st.queue.remove(id);
            st.stats.cancelled += 1;
            st.stats.queue_depth = st.queue.depth();
            JobState::Cancelled
        };
        drop(st);
        self.shared.cv.notify_all();
        Ok(state)
    }

    /// The mirrored counters (live even with telemetry disabled).
    #[must_use]
    pub fn stats(&self) -> ServeStats {
        let st = self.shared.lock();
        let mut stats = st.stats.clone();
        stats.queue_depth = st.queue.depth();
        stats.inflight = st.inflight;
        stats.draining = st.draining;
        stats
    }

    /// Blocks until the job reaches a terminal state or `timeout`
    /// elapses; returns the last observed state (`None` for an unknown
    /// id). Callers distinguish timeout from completion via
    /// [`JobState::is_terminal`].
    #[must_use]
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut st = self.shared.lock();
        loop {
            let state = st.jobs.get(&id)?.state.clone();
            if state.is_terminal() {
                return Some(state);
            }
            let now = Instant::now();
            if now >= deadline {
                return Some(state);
            }
            st = self
                .shared
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Begins a drain: no new submissions are accepted, and running jobs
    /// park at their next supervision boundary (checkpoint already
    /// flushed). Idempotent.
    pub fn drain(&self) {
        let mut st = self.shared.lock();
        st.draining = true;
        st.stats.draining = true;
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Drains, waits for in-flight work to park (bounded by `timeout`),
    /// stops the workers, and joins them. Queued jobs stay checkpointed
    /// in the state directory for a future daemon to resume.
    pub fn shutdown(mut self, timeout: Duration) {
        self.drain();
        let deadline = Instant::now() + timeout;
        {
            let mut st = self.shared.lock();
            while st.inflight > 0 {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                st = self
                    .shared
                    .cv
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0;
            }
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.draining = true;
            st.stopping = true;
        }
        self.shared.cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// What a single attempt produced (besides a typed error).
enum AttemptOutcome {
    Done(JobResult),
    /// The daemon is draining; the job parked at a checkpoint boundary.
    Parked,
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let Some((id, spec, attempt, first_started, deadline_ms)) = next_job(shared) else {
            return; // stopping
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run_attempt(shared, id, &spec, attempt, first_started, deadline_ms)
        }))
        .unwrap_or_else(|payload| Err(JobError::Panicked(panic_message(&*payload))));
        settle(shared, id, attempt, spec.priority(), outcome);
    }
}

/// Blocks until a job is runnable (or the pool is stopping) and claims it.
#[allow(clippy::type_complexity)]
fn next_job(shared: &Arc<Shared>) -> Option<(u64, JobSpec, usize, Instant, Option<u64>)> {
    let mut st = shared.lock();
    loop {
        if st.stopping {
            return None;
        }
        let now = Instant::now();
        let can_run = !st.draining && st.inflight < shared.cfg.max_inflight;
        if can_run && st.queue.has_ready(now) {
            break;
        }
        // Sleep until woken — or until the earliest backoff expires, when
        // the only queued work is backing off.
        let wake_in = if can_run {
            st.queue.next_ready_at().map(|t| {
                t.saturating_duration_since(now)
                    .max(Duration::from_millis(1))
            })
        } else {
            None
        };
        st = match wake_in {
            Some(d) => {
                shared
                    .cv
                    .wait_timeout(st, d)
                    .unwrap_or_else(PoisonError::into_inner)
                    .0
            }
            None => shared.cv.wait(st).unwrap_or_else(PoisonError::into_inner),
        };
    }
    let id = st
        .queue
        .pop_ready(Instant::now())
        .expect("has_ready guaranteed a runnable entry");
    st.stats.queue_depth = st.queue.depth();
    QUEUE_DEPTH.record(st.queue.depth() as f64);
    st.inflight += 1;
    let job = st
        .jobs
        .get_mut(&id)
        .expect("every queued id has a job record");
    job.attempts += 1;
    let attempt = job.attempts;
    job.state = JobState::Running { attempt };
    let first_started = *job.first_started.get_or_insert_with(Instant::now);
    let deadline_ms = job.spec.deadline_ms.or(shared.cfg.default_deadline_ms);
    let spec = job.spec.clone();
    drop(st);
    shared.cv.notify_all();
    Some((id, spec, attempt, first_started, deadline_ms))
}

/// Applies an attempt's outcome to the job table and re-queues retries.
fn settle(
    shared: &Arc<Shared>,
    id: u64,
    attempt: usize,
    priority: Priority,
    outcome: Result<AttemptOutcome, JobError>,
) {
    let mut st = shared.lock();
    st.inflight -= 1;
    let retry_max = shared.cfg.retry_max;
    let backoff = |err: &JobError| -> Option<u64> {
        (err.is_transient() && attempt <= retry_max)
            .then(|| shared.cfg.backoff_ms(shared.backoff_seed(), id, attempt))
    };
    if let Some(job) = st.jobs.get_mut(&id) {
        match outcome {
            Ok(AttemptOutcome::Done(result)) => {
                job.state = JobState::Completed;
                job.result = Some(result);
                st.stats.completed += 1;
            }
            Ok(AttemptOutcome::Parked) => {
                job.state = JobState::Queued;
                st.queue.push_retry(id, priority.rank(), None);
            }
            Err(JobError::Cancelled) => {
                job.state = JobState::Cancelled;
                st.stats.cancelled += 1;
            }
            Err(err) => {
                if let Some(delay_ms) = backoff(&err) {
                    job.state = JobState::Backoff {
                        attempt,
                        retry_in_ms: delay_ms,
                    };
                    st.stats.retries += 1;
                    RETRIES.add(1);
                    st.queue.push_retry(
                        id,
                        priority.rank(),
                        Some(Instant::now() + Duration::from_millis(delay_ms)),
                    );
                } else {
                    let deadline = matches!(err, JobError::DeadlineExceeded { .. });
                    job.state = JobState::Failed {
                        kind: err.kind().to_owned(),
                        error: err.to_string(),
                    };
                    st.stats.failed += 1;
                    if deadline {
                        st.stats.deadline_evictions += 1;
                        DEADLINE_EVICTIONS.add(1);
                    }
                }
            }
        }
        st.stats.queue_depth = st.queue.depth();
        st.stats.peak_queue_depth = st.stats.peak_queue_depth.max(st.queue.depth());
    }
    drop(st);
    shared.cv.notify_all();
}

/// Checks cancellation, drain, and the deadline at a supervision boundary.
/// Returns `Ok(true)` when the job should park.
fn boundary_gate(
    shared: &Shared,
    id: u64,
    first_started: Instant,
    deadline_ms: Option<u64>,
) -> Result<bool, JobError> {
    {
        let st = shared.lock();
        if st.jobs.get(&id).is_some_and(|j| j.cancel_requested) {
            return Err(JobError::Cancelled);
        }
        if st.draining || st.stopping {
            return Ok(true);
        }
    }
    if let Some(deadline_ms) = deadline_ms {
        let elapsed_ms = first_started.elapsed().as_millis() as u64;
        if elapsed_ms > deadline_ms {
            return Err(JobError::DeadlineExceeded {
                elapsed_ms,
                deadline_ms,
            });
        }
    }
    Ok(false)
}

fn dataset_kind(name: &str) -> Result<DatasetKind, JobError> {
    match name {
        "mnist" => Ok(DatasetKind::MnistLike),
        "fashion" | "fashion-mnist" => Ok(DatasetKind::FashionLike),
        "cifar" | "cifar-10" | "cifar10" => Ok(DatasetKind::Cifar10Like),
        "tiny" => Ok(DatasetKind::Tiny),
        other => Err(JobError::Invalid(format!("unknown dataset '{other}'"))),
    }
}

/// Runs one attempt of a job end to end. Panics inside are caught by the
/// caller's crash barrier.
fn run_attempt(
    shared: &Shared,
    id: u64,
    spec: &JobSpec,
    attempt: usize,
    first_started: Instant,
    deadline_ms: Option<u64>,
) -> Result<AttemptOutcome, JobError> {
    let seed = spec.seed();
    let kind = dataset_kind(&spec.dataset)?;
    let mut env_cfg = EnvConfig::paper_small(kind, spec.budget);
    env_cfg.fleet.nodes = spec.nodes;
    let mut env =
        EdgeLearningEnv::try_new(env_cfg, seed).map_err(|e| JobError::Invalid(e.to_string()))?;
    let chiron_cfg = match spec.profile.as_deref() {
        Some("fast") => ChironConfig::fast(),
        _ => ChironConfig::paper(),
    };
    let mut mechanism = Chiron::new(&env, chiron_cfg, seed);

    let rewards = match spec.kind {
        crate::job::JobKind::Eval => {
            if boundary_gate(shared, id, first_started, deadline_ms)? {
                return Ok(AttemptOutcome::Parked);
            }
            if let Some(chaos) = &shared.chaos {
                chaos.on_boundary(id, 0);
            }
            Vec::new()
        }
        crate::job::JobKind::Train => {
            let episodes = spec
                .episodes
                .ok_or_else(|| JobError::Invalid("train jobs need episodes".into()))?;
            let path = shared.cfg.state_dir.join(format!("job-{id}.json"));
            // A previous chaos fault may have left a blockage (a directory)
            // at the atomic-write temp path; clear it so this attempt can
            // checkpoint again.
            let tmp = path.with_extension("json.tmp");
            if tmp.is_dir() {
                let _ = std::fs::remove_dir_all(&tmp);
            }
            let options = RecoveryOptions::try_new(&path, shared.cfg.checkpoint_every)
                .map_err(JobError::Resume)?;
            if attempt > 1 && RunCheckpoint::any_exists(&path) {
                RESUMED.add(1);
                shared.lock().stats.resumed += 1;
            }
            let mut log = EventLog::new();
            let mut rewards = Vec::new();
            let mut done = 0usize;
            while done < episodes {
                if boundary_gate(shared, id, first_started, deadline_ms)? {
                    return Ok(AttemptOutcome::Parked);
                }
                let target = (done + shared.cfg.checkpoint_every).min(episodes);
                if let Some(chaos) = &shared.chaos {
                    if chaos.sabotage_checkpoint(id, target) {
                        // Block the atomic write's temp path: the chunk
                        // trains, the save fails typed, and the retry
                        // replays the chunk from the previous checkpoint.
                        let _ = std::fs::create_dir_all(&tmp);
                    }
                }
                rewards = mechanism
                    .train_recoverable(&mut env, target, &options, &mut log)
                    .map_err(JobError::Resume)?;
                done = rewards.len();
                if let Some(chaos) = &shared.chaos {
                    chaos.on_boundary(id, done);
                }
            }
            rewards
        }
    };
    // Final gate before the evaluation episode (deadline/cancel/drain).
    if boundary_gate(shared, id, first_started, deadline_ms)? {
        return Ok(AttemptOutcome::Parked);
    }
    let (summary, _records) = mechanism.run_episode(&mut env);
    if spec.kind == crate::job::JobKind::Train {
        let path = shared.cfg.state_dir.join(format!("job-{id}.json"));
        let _ = RunCheckpoint::remove(&path);
    }
    Ok(AttemptOutcome::Done(JobResult {
        rewards,
        final_accuracy: summary.final_accuracy,
        rounds: summary.rounds,
        spent: summary.spent,
    }))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_owned())
}

/// A process-unique suffix for state directories in tests and defaults.
#[must_use]
pub fn unique_state_dir(prefix: &str) -> std::path::PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{prefix}-{}-{n}", std::process::id()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(name: &str) -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_inflight: 2,
            queue_cap: 8,
            retry_max: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 50,
            checkpoint_every: 2,
            state_dir: unique_state_dir(name),
            ..ServeConfig::default()
        }
    }

    fn tiny_eval() -> JobSpec {
        JobSpec::eval("tiny", 3, 20.0, 7)
    }

    #[test]
    fn eval_job_completes_with_result() {
        let sup = Supervisor::start(test_cfg("sup-eval")).expect("start");
        let id = sup.submit(tiny_eval()).expect("submit");
        let state = sup.wait(id, Duration::from_secs(60)).expect("known job");
        assert_eq!(state, JobState::Completed);
        let view = sup.status(id).expect("view");
        let result = view.result.expect("completed jobs carry a result");
        assert!(result.final_accuracy > 0.0);
        assert!(result.rewards.is_empty(), "eval jobs train no episodes");
        let stats = sup.stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.completed, 1);
        sup.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn invalid_spec_is_rejected_at_admission() {
        let sup = Supervisor::start(test_cfg("sup-invalid")).expect("start");
        let mut spec = tiny_eval();
        spec.nodes = 0;
        match sup.submit(spec) {
            Err(ServeError::InvalidSpec(_)) => {}
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        sup.shutdown(Duration::from_secs(5));
    }

    #[test]
    fn cancel_of_queued_job_is_immediate() {
        let cfg = ServeConfig {
            workers: 1,
            max_inflight: 1,
            ..test_cfg("sup-cancel")
        };
        let sup = Supervisor::start(cfg).expect("start");
        // Occupy the single worker, then cancel a queued job behind it.
        let running = sup
            .submit(JobSpec::train_fast("tiny", 3, 20.0, 4, 7))
            .expect("submit");
        let queued = sup.submit(tiny_eval()).expect("submit");
        let state = sup.cancel(queued).expect("cancel");
        assert_eq!(state, JobState::Cancelled);
        match sup.cancel(queued) {
            Err(ServeError::AlreadyTerminal { .. }) => {}
            other => panic!("expected AlreadyTerminal, got {other:?}"),
        }
        assert!(matches!(sup.cancel(999), Err(ServeError::UnknownJob(999))));
        let state = sup.wait(running, Duration::from_secs(120)).expect("known");
        assert_eq!(state, JobState::Completed);
        sup.shutdown(Duration::from_secs(5));
    }
}
