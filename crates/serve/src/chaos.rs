//! Deterministic fault injection for the serve layer.
//!
//! A [`FaultPlan`] is a seeded list of faults the supervisor consults at
//! well-defined points of a job's execution (chunk boundaries — the same
//! places deadlines and cancellation are checked). Every fault fires at
//! most once, at a position fixed by the plan rather than by wall-clock
//! timing, so a chaos run is exactly reproducible: same plan + same seed
//! → same kill point → same resume point → bitwise-identical results.
//!
//! The plan is a test-only hook in spirit, but it lives in the production
//! crate (not under `#[cfg(test)]`) so integration tests and the chaos CI
//! step can drive a fully-assembled daemon through it.

use std::sync::atomic::{AtomicBool, Ordering};

/// A single injectable fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the worker executing `job` at the first supervision
    /// boundary where at least `at_episode` episodes are done. The panic
    /// is caught at the job boundary; the retry resumes from the latest
    /// checkpoint.
    KillWorker {
        /// Target job id.
        job: u64,
        /// Fire once at least this many episodes have completed.
        at_episode: usize,
    },
    /// Make the checkpoint write that would cover `at_episode` fail with
    /// an I/O error (the supervisor blocks the checkpoint's temp path, so
    /// the atomic write fails typed without corrupting prior
    /// generations).
    CheckpointIoError {
        /// Target job id.
        job: u64,
        /// Sabotage the chunk whose checkpoint covers this episode.
        at_episode: usize,
    },
    /// Sleep `delay_ms` at the job's first supervision boundary,
    /// simulating a straggler (used to trip deadline eviction).
    Straggler {
        /// Target job id.
        job: u64,
        /// Stall duration in milliseconds.
        delay_ms: u64,
    },
}

/// A seeded, fire-once set of faults.
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<(Fault, AtomicBool)>,
}

impl FaultPlan {
    /// An empty plan with the given seed (the seed feeds backoff jitter,
    /// keeping chaos runs reproducible end to end).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault (builder style).
    #[must_use]
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push((fault, AtomicBool::new(false)));
        self
    }

    /// The plan seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Supervision-boundary hook: called by the worker after `done`
    /// episodes of `job` have completed (and their checkpoint, if any,
    /// is flushed). Sleeps for stragglers and panics for worker kills —
    /// the panic is caught by the supervisor's job boundary.
    ///
    /// # Panics
    ///
    /// Panics exactly once per matching [`Fault::KillWorker`]; that is
    /// the fault.
    pub fn on_boundary(&self, job: u64, done: usize) {
        for (fault, fired) in &self.faults {
            match *fault {
                Fault::Straggler {
                    job: target,
                    delay_ms,
                } if target == job && !fired.swap(true, Ordering::SeqCst) => {
                    std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                }
                Fault::KillWorker {
                    job: target,
                    at_episode,
                } if target == job && done >= at_episode && !fired.swap(true, Ordering::SeqCst) => {
                    panic!("chaos: injected worker kill for job {job} at episode {done}");
                }
                _ => {}
            }
        }
    }

    /// Whether the checkpoint write covering episodes up to `chunk_end`
    /// of `job` should be sabotaged. Consumes the fault.
    #[must_use]
    pub fn sabotage_checkpoint(&self, job: u64, chunk_end: usize) -> bool {
        for (fault, fired) in &self.faults {
            if let Fault::CheckpointIoError {
                job: target,
                at_episode,
            } = *fault
            {
                if target == job && chunk_end >= at_episode && !fired.swap(true, Ordering::SeqCst) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether any fault is still pending (diagnostics for tests).
    #[must_use]
    pub fn pending(&self) -> usize {
        self.faults
            .iter()
            .filter(|(_, fired)| !fired.load(Ordering::SeqCst))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_fires_once_at_threshold() {
        let plan = FaultPlan::new(1).with(Fault::KillWorker {
            job: 3,
            at_episode: 4,
        });
        plan.on_boundary(3, 2); // below threshold — no fire
        plan.on_boundary(7, 10); // other job — no fire
        assert_eq!(plan.pending(), 1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.on_boundary(3, 4);
        }));
        assert!(caught.is_err(), "kill fault must panic");
        assert_eq!(plan.pending(), 0);
        plan.on_boundary(3, 8); // fire-once: no second panic
    }

    #[test]
    fn checkpoint_sabotage_consumes() {
        let plan = FaultPlan::new(1).with(Fault::CheckpointIoError {
            job: 5,
            at_episode: 10,
        });
        assert!(!plan.sabotage_checkpoint(5, 5));
        assert!(plan.sabotage_checkpoint(5, 10));
        assert!(!plan.sabotage_checkpoint(5, 15), "fires once");
    }
}
