//! A minimal, dependency-free `--flag value` argument parser.
//!
//! Deliberately tiny: the CLI has four subcommands with a handful of typed
//! flags each, which does not justify pulling a full argument-parsing
//! dependency into the workspace.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The first positional token (subcommand), if any.
    pub command: Option<String>,
    /// All `--key value` pairs, in insertion-stable (sorted) order.
    pub options: BTreeMap<String, String>,
}

/// Errors produced while parsing or extracting options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a following value.
    MissingValue(String),
    /// An unexpected positional argument appeared after the subcommand.
    UnexpectedPositional(String),
    /// The same flag was given twice.
    Duplicate(String),
    /// A flag's value failed to parse into the requested type.
    BadValue {
        /// Flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// Target type name.
        expected: &'static str,
    },
    /// A required flag is missing.
    Required(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "--{flag} expects a value"),
            ArgError::UnexpectedPositional(tok) => {
                write!(f, "unexpected positional argument '{tok}'")
            }
            ArgError::Duplicate(flag) => write!(f, "--{flag} given more than once"),
            ArgError::BadValue {
                flag,
                value,
                expected,
            } => write!(f, "--{flag} '{value}' is not a valid {expected}"),
            ArgError::Required(flag) => write!(f, "--{flag} is required"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` (without the program name) into a subcommand and options.
///
/// # Errors
///
/// Returns [`ArgError`] on malformed input.
///
/// # Examples
///
/// ```
/// use chiron_cli::args::parse;
///
/// let parsed = parse(&["train", "--budget", "100"]).expect("valid");
/// assert_eq!(parsed.command.as_deref(), Some("train"));
/// assert_eq!(parsed.options.get("budget").map(String::as_str), Some("100"));
/// ```
pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<ParsedArgs, ArgError> {
    let mut parsed = ParsedArgs::default();
    let mut it = args.iter().map(|s| s.as_ref());
    while let Some(tok) = it.next() {
        if let Some(flag) = tok.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| ArgError::MissingValue(flag.to_owned()))?;
            if parsed
                .options
                .insert(flag.to_owned(), value.to_owned())
                .is_some()
            {
                return Err(ArgError::Duplicate(flag.to_owned()));
            }
        } else if parsed.command.is_none() {
            parsed.command = Some(tok.to_owned());
        } else {
            return Err(ArgError::UnexpectedPositional(tok.to_owned()));
        }
    }
    Ok(parsed)
}

impl ParsedArgs {
    /// A string option, or `default` if absent.
    pub fn str_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.options
            .get(flag)
            .map(String::as_str)
            .unwrap_or(default)
    }

    /// A required string option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::Required`] if absent.
    pub fn str_required(&self, flag: &str) -> Result<&str, ArgError> {
        self.options
            .get(flag)
            .map(String::as_str)
            .ok_or_else(|| ArgError::Required(flag.to_owned()))
    }

    /// A typed option, or `default` if absent.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] if present but unparsable.
    pub fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: flag.to_owned(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// Rejects unknown flags (everything not in `known`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::UnexpectedPositional`] naming the first unknown
    /// flag.
    pub fn reject_unknown(&self, known: &[&str]) -> Result<(), ArgError> {
        for key in self.options.keys() {
            if !known.contains(&key.as_str()) {
                return Err(ArgError::UnexpectedPositional(format!("--{key}")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_flags() {
        let p = parse(&["eval", "--budget", "140", "--seed", "7"]).expect("valid");
        assert_eq!(p.command.as_deref(), Some("eval"));
        assert_eq!(p.str_or("budget", "0"), "140");
        assert_eq!(p.parse_or::<u64>("seed", 0).expect("number"), 7);
    }

    #[test]
    fn defaults_apply_when_absent() {
        let p = parse(&["train"]).expect("valid");
        assert_eq!(p.parse_or::<f64>("budget", 100.0).expect("default"), 100.0);
        assert_eq!(p.str_or("dataset", "mnist"), "mnist");
    }

    #[test]
    fn missing_value_is_an_error() {
        assert_eq!(
            parse(&["train", "--budget"]),
            Err(ArgError::MissingValue("budget".into()))
        );
    }

    #[test]
    fn duplicates_rejected() {
        assert_eq!(
            parse(&["x", "--a", "1", "--a", "2"]),
            Err(ArgError::Duplicate("a".into()))
        );
    }

    #[test]
    fn extra_positionals_rejected() {
        assert_eq!(
            parse(&["train", "oops"]),
            Err(ArgError::UnexpectedPositional("oops".into()))
        );
    }

    #[test]
    fn bad_typed_value_reports_flag() {
        let p = parse(&["x", "--n", "abc"]).expect("syntactically fine");
        let err = p.parse_or::<usize>("n", 1).expect_err("must fail");
        assert!(matches!(err, ArgError::BadValue { .. }));
        assert!(err.to_string().contains("--n"));
    }

    #[test]
    fn required_flag_enforced() {
        let p = parse(&["x"]).expect("valid");
        assert_eq!(
            p.str_required("model"),
            Err(ArgError::Required("model".into()))
        );
    }

    #[test]
    fn unknown_flags_detected() {
        let p = parse(&["x", "--known", "1", "--mystery", "2"]).expect("valid");
        assert!(p.reject_unknown(&["known"]).is_err());
        assert!(p.reject_unknown(&["known", "mystery"]).is_ok());
    }
}
