//! The CLI subcommands: `train`, `eval`, `compare`, `serve`, `info`.

use crate::args::{ArgError, ParsedArgs};
use chiron::{
    Chiron, ChironConfig, ChironSnapshot, EpisodeRun, Mechanism, MechanismParams, RecoveryOptions,
    ResumeError,
};
use chiron_baselines::{parse_ids, MechanismError};
use chiron_data::{DatasetKind, DatasetSpec};
use chiron_fedsim::faults::FaultProcessConfig;
use chiron_fedsim::metrics::{rounds_to_csv, EpisodeSummary, EventLog};
use chiron_fedsim::{EdgeLearningEnv, EnvConfig, ResilienceConfig};
use chiron_serve::{shutdown, Daemon, ServeConfig, ServeError};
use chiron_telemetry::{RuntimeConfig, TelemetrySession};
use chiron_tensor::scope;
use serde::{Deserialize, Serialize};

/// A fully specified experiment, loadable from JSON (`run --config`).
///
/// Every simulator and mechanism knob is on the record, so an experiment
/// file plus a seed reproduces a result exactly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Free-form description (recorded, not interpreted).
    pub description: String,
    /// Environment: fleet, dataset, budget, channel, oracle noise.
    pub env: EnvConfig,
    /// Chiron hyperparameters.
    pub chiron: ChironConfig,
    /// Training episodes.
    pub episodes: usize,
    /// Master seed.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's small-scale MNIST experiment as a starting template.
    pub fn template() -> Self {
        Self {
            description: "Chiron on MNIST-like, 5 nodes, eta = 100 (paper small-scale)".into(),
            env: EnvConfig::paper_small(DatasetKind::MnistLike, 100.0),
            chiron: ChironConfig::paper(),
            episodes: 300,
            seed: 42,
        }
    }

    /// Builder seeded with [`ExperimentConfig::template`]; override any
    /// subset of knobs and finish with a validated
    /// [`ExperimentConfigBuilder::build`].
    ///
    /// ```
    /// use chiron_cli::commands::ExperimentConfig;
    /// use chiron_data::DatasetKind;
    /// let exp = ExperimentConfig::builder()
    ///     .dataset(DatasetKind::MnistLike)
    ///     .budget(100.0)
    ///     .seed(42)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(exp.seed, 42);
    /// ```
    pub fn builder() -> ExperimentConfigBuilder {
        ExperimentConfigBuilder {
            inner: Self::template(),
        }
    }
}

/// Builder for [`ExperimentConfig`]. Validation happens once, at
/// [`ExperimentConfigBuilder::build`].
#[derive(Debug, Clone)]
pub struct ExperimentConfigBuilder {
    inner: ExperimentConfig,
}

impl ExperimentConfigBuilder {
    /// Free-form description recorded in the experiment file.
    pub fn description(mut self, description: impl Into<String>) -> Self {
        self.inner.description = description.into();
        self
    }

    /// Dataset profile by kind.
    pub fn dataset(mut self, kind: DatasetKind) -> Self {
        self.inner.env.dataset = DatasetSpec::for_kind(kind);
        self
    }

    /// Fleet size, keeping the template's per-node parameter ranges.
    pub fn nodes(mut self, nodes: usize) -> Self {
        self.inner.env.fleet.nodes = nodes;
        self
    }

    /// Total budget `η`.
    pub fn budget(mut self, budget: f64) -> Self {
        self.inner.env.budget = budget;
        self
    }

    /// Full environment configuration (overrides dataset/nodes/budget).
    pub fn env(mut self, env: EnvConfig) -> Self {
        self.inner.env = env;
        self
    }

    /// Chiron hyperparameters.
    pub fn chiron(mut self, chiron: ChironConfig) -> Self {
        self.inner.chiron = chiron;
        self
    }

    /// Training episodes.
    pub fn episodes(mut self, episodes: usize) -> Self {
        self.inner.episodes = episodes;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner.seed = seed;
        self
    }

    /// Validates the assembled experiment and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::Invalid`] naming the first violated constraint.
    pub fn build(self) -> Result<ExperimentConfig, CliError> {
        let c = &self.inner;
        if c.env.fleet.nodes == 0 {
            return Err(CliError::Invalid("nodes must be at least 1".into()));
        }
        if !(c.env.budget > 0.0 && c.env.budget.is_finite()) {
            return Err(CliError::Invalid("budget must be positive".into()));
        }
        if c.episodes == 0 {
            return Err(CliError::Invalid("episodes must be at least 1".into()));
        }
        c.chiron
            .check()
            .map_err(|e| CliError::Invalid(e.to_string()))?;
        Ok(self.inner)
    }
}

/// A CLI failure with a user-facing message and a typed source chain.
#[derive(Debug)]
pub enum CliError {
    /// Command-line parsing or flag extraction failed.
    Arg(ArgError),
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// A flag or configuration value was rejected (message is the full
    /// user-facing explanation).
    Invalid(String),
    /// A mechanism snapshot failed to load or restore.
    Snapshot {
        /// Path of the offending snapshot file.
        path: String,
        /// The typed failure underneath.
        source: chiron::Error,
    },
    /// An experiment file failed to parse.
    Experiment {
        /// Path of the offending experiment file.
        path: String,
        /// The parse failure underneath.
        source: serde_json::Error,
    },
    /// A run checkpoint failed to load, restore, or save.
    Recovery {
        /// Path of the offending checkpoint file.
        path: String,
        /// The typed failure underneath.
        source: ResumeError,
    },
    /// A mechanism id failed to resolve or a mechanism config was rejected
    /// (see [`chiron_baselines::MechanismError`]).
    Mechanism(MechanismError),
    /// The serve daemon failed to start or operate.
    Serve(ServeError),
    /// The run was stopped by SIGINT/SIGTERM after flushing its state;
    /// `main` maps this to exit code [`shutdown::EXIT_INTERRUPTED`].
    Interrupted,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Arg(e) => write!(f, "{e}"),
            CliError::Io(e) => write!(f, "I/O error: {e}"),
            CliError::Invalid(msg) => f.write_str(msg),
            CliError::Snapshot { path, source } => match source {
                chiron::Error::Checkpoint(e) => write!(
                    f,
                    "snapshot {path} does not fit this task shape: {e} \
                     (train and eval must use the same --nodes)"
                ),
                other => write!(f, "invalid snapshot {path}: {other}"),
            },
            CliError::Experiment { path, source } => {
                write!(f, "invalid experiment file {path}: {source}")
            }
            CliError::Recovery { path, source } => {
                write!(f, "checkpoint {path}: {source}")
            }
            CliError::Mechanism(e) => write!(f, "{e}"),
            CliError::Serve(e) => write!(f, "{e}"),
            CliError::Interrupted => f.write_str("interrupted by signal; state flushed"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Arg(e) => Some(e),
            CliError::Io(e) => Some(e),
            CliError::Invalid(_) => None,
            CliError::Snapshot { source, .. } => Some(source),
            CliError::Experiment { source, .. } => Some(source),
            CliError::Recovery { source, .. } => Some(source),
            CliError::Mechanism(e) => Some(e),
            CliError::Serve(e) => Some(e),
            CliError::Interrupted => None,
        }
    }
}

impl From<ServeError> for CliError {
    fn from(e: ServeError) -> Self {
        CliError::Serve(e)
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<MechanismError> for CliError {
    fn from(e: MechanismError) -> Self {
        CliError::Mechanism(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

fn dataset_from(name: &str) -> Result<DatasetKind, CliError> {
    match name {
        "mnist" => Ok(DatasetKind::MnistLike),
        "fashion" | "fashion-mnist" => Ok(DatasetKind::FashionLike),
        "cifar" | "cifar-10" | "cifar10" => Ok(DatasetKind::Cifar10Like),
        "tiny" => Ok(DatasetKind::Tiny),
        other => Err(CliError::Invalid(format!(
            "unknown dataset '{other}' (expected mnist | fashion | cifar | tiny)"
        ))),
    }
}

fn build_env(
    kind: DatasetKind,
    nodes: usize,
    budget: f64,
    seed: u64,
    rt: &RuntimeConfig,
) -> Result<EdgeLearningEnv, CliError> {
    if nodes == 0 {
        return Err(CliError::Invalid("--nodes must be at least 1".into()));
    }
    if budget <= 0.0 {
        return Err(CliError::Invalid("--budget must be positive".into()));
    }
    let mut config = EnvConfig::paper_small(kind, budget);
    config.fleet.nodes = nodes;
    // CHIRON_FLEET_SAMPLE switches on O(selected) sampled participation;
    // 0 or unset keeps the paper's full participation.
    if let Some(per_round) = rt.fleet_sample.filter(|&k| k > 0) {
        config.participation = chiron_fedsim::Participation::Sampled { per_round };
    }
    let mut env =
        EdgeLearningEnv::try_new(config, seed).map_err(|e| CliError::Invalid(e.to_string()))?;
    apply_env_overrides(&mut env, rt);
    Ok(env)
}

/// Applies the resilience knobs of the ambient [`RuntimeConfig`]
/// (documented in README.md): `CHIRON_QUORUM` / `CHIRON_DEADLINE_SLACK`
/// switch on the PS-side countermeasures, and `CHIRON_FAULT_SEED`
/// installs the standard stochastic fault process seeded with its value.
/// Unset or malformed variables leave the environment untouched.
fn apply_env_overrides(env: &mut EdgeLearningEnv, rt: &RuntimeConfig) {
    env.set_resilience(ResilienceConfig::from_runtime(rt));
    if let Some(seed) = rt.fault_seed {
        env.set_fault_process(Some(FaultProcessConfig::standard(seed)));
    }
}

/// Applies `--jobs N` (falling back to `CHIRON_JOBS`): resizes the shared
/// worker pool that both fine-grained tensor regions and coarse scopes
/// (nodes, sweep cells, eval seeds) draw from. Absent both, the pool keeps
/// its `CHIRON_THREADS`/available-parallelism sizing. Results are bitwise
/// identical for every value — only wall-clock changes.
fn apply_jobs(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    let jobs = match args.options.get("jobs") {
        Some(raw) => Some(raw.parse::<usize>().map_err(|_| {
            CliError::Invalid(format!("invalid --jobs value '{raw}' (expected a count)"))
        })?),
        None => rt.jobs,
    };
    if let Some(jobs) = jobs {
        if jobs == 0 {
            return Err(CliError::Invalid("--jobs must be at least 1".into()));
        }
        chiron_tensor::pool::set_threads(jobs);
    }
    Ok(())
}

/// Opens a telemetry session when `--telemetry <path>` (or the
/// `CHIRON_TELEMETRY` variable) asks for one; `None` means disabled.
fn telemetry_from(
    args: &ParsedArgs,
    rt: &RuntimeConfig,
) -> Result<Option<TelemetrySession>, CliError> {
    let path = args
        .options
        .get("telemetry")
        .cloned()
        .or_else(|| rt.telemetry.clone());
    match path {
        None => Ok(None),
        Some(path) => {
            let session = TelemetrySession::to_jsonl(&path)?;
            println!("telemetry streaming to {path} (aggregates: {path}.prom)");
            Ok(Some(session))
        }
    }
}

fn finish_telemetry(session: Option<TelemetrySession>) -> Result<(), CliError> {
    if let Some(session) = session {
        session.finish()?;
    }
    Ok(())
}

fn print_summary(name: &str, s: &EpisodeSummary) {
    println!("{name}:");
    println!("  rounds completed    : {}", s.rounds);
    println!("  final accuracy      : {:.4}", s.final_accuracy);
    println!("  total learning time : {:.1} s", s.total_time);
    println!(
        "  mean time efficiency: {:.1} %",
        s.mean_time_efficiency * 100.0
    );
    println!("  budget spent        : {:.2}", s.spent);
}

/// `chiron-cli train` — trains Chiron and optionally writes a snapshot.
///
/// Training is interruptible: SIGINT/SIGTERM stops at the next episode
/// boundary, flushes the checkpoint (`--checkpoint`) or the snapshot
/// (`--out`) plus telemetry, and exits with
/// [`shutdown::EXIT_INTERRUPTED`]. With `--checkpoint`, re-running the
/// same command resumes bitwise-identically to an uninterrupted run.
pub fn train(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&[
        "dataset",
        "nodes",
        "budget",
        "episodes",
        "seed",
        "out",
        "checkpoint",
        "checkpoint-every",
        "telemetry",
        "jobs",
    ])?;
    let kind = dataset_from(args.str_or("dataset", "mnist"))?;
    let nodes: usize = args.parse_or("nodes", 5)?;
    let budget: f64 = args.parse_or("budget", 100.0)?;
    let episodes: usize = args.parse_or("episodes", 300)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let chunk: usize = args.parse_or("checkpoint-every", 25)?;
    if chunk == 0 {
        return Err(CliError::Invalid(
            "--checkpoint-every must be at least 1".into(),
        ));
    }
    apply_jobs(args, rt)?;
    let telemetry = telemetry_from(args, rt)?;
    shutdown::install();

    let mut env = build_env(kind, nodes, budget, seed, rt)?;
    println!(
        "training chiron: dataset {kind}, {nodes} nodes, η = {budget}, {episodes} episodes, seed {seed}"
    );
    let mut mech = Chiron::new(&env, ChironConfig::paper(), seed);
    let t0 = std::time::Instant::now();
    let rewards = match args.options.get("checkpoint") {
        Some(path) => match train_checkpointed(&mut mech, &mut env, episodes, chunk, path) {
            Ok(rewards) => rewards,
            Err(TrainStop::Recovery(source)) => {
                return Err(CliError::Recovery {
                    path: path.clone(),
                    source,
                });
            }
            Err(TrainStop::Interrupted(done)) => {
                println!(
                    "interrupt received: checkpoint flushed at episode {done} ({path}); \
                     re-run the same command to resume"
                );
                finish_telemetry(telemetry)?;
                return Err(CliError::Interrupted);
            }
        },
        None => {
            // Episode boundaries are exact PPO-update boundaries (buffers
            // are empty there), so training in chunks is bitwise-identical
            // to a single `train` call — which makes the run interruptible
            // without any checkpoint machinery.
            let mut rewards = Vec::with_capacity(episodes);
            let mut interrupted = false;
            while rewards.len() < episodes {
                if shutdown::requested() {
                    interrupted = true;
                    break;
                }
                let n = chunk.min(episodes - rewards.len());
                rewards.extend(mech.train(&mut env, n));
            }
            if interrupted {
                match args.options.get("out") {
                    Some(path) => {
                        std::fs::write(path, mech.snapshot().to_json())?;
                        println!(
                            "interrupt received: snapshot flushed to {path} after episode {}",
                            rewards.len()
                        );
                    }
                    None => println!(
                        "interrupt received: stopping after episode {} \
                         (no --out/--checkpoint, progress discarded)",
                        rewards.len()
                    ),
                }
                finish_telemetry(telemetry)?;
                return Err(CliError::Interrupted);
            }
            rewards
        }
    };
    println!("trained in {:.1?}", t0.elapsed());
    if let (Some(first), Some(last)) = (rewards.first(), rewards.last()) {
        println!("episode reward: {first:.2} (first) → {last:.2} (last)");
    }

    let (summary, _) = mech.run_episode(&mut env);
    print_summary("evaluation", &summary);

    if let Some(path) = args.options.get("out") {
        std::fs::write(path, mech.snapshot().to_json())?;
        println!("snapshot written to {path}");
    }
    finish_telemetry(telemetry)
}

/// Why checkpointed training stopped before completing its episodes.
enum TrainStop {
    /// The recovery layer failed (load, restore, or save).
    Recovery(ResumeError),
    /// A shutdown signal arrived; the checkpoint at this episode count is
    /// flushed.
    Interrupted(usize),
}

/// Drives `train_recoverable` in chunks of `chunk` episodes so shutdown
/// signals are honoured at checkpoint boundaries. Resumes automatically
/// if `path` already holds a checkpoint.
fn train_checkpointed(
    mech: &mut Chiron,
    env: &mut EdgeLearningEnv,
    episodes: usize,
    chunk: usize,
    path: &str,
) -> Result<Vec<f64>, TrainStop> {
    let options = RecoveryOptions::try_new(path, chunk).map_err(TrainStop::Recovery)?;
    let mut log = EventLog::new();
    let mut rewards = Vec::new();
    let mut done = 0usize;
    while done < episodes {
        if shutdown::requested() {
            return Err(TrainStop::Interrupted(done));
        }
        let target = (done + chunk).min(episodes);
        rewards = mech
            .train_recoverable(env, target, &options, &mut log)
            .map_err(TrainStop::Recovery)?;
        done = rewards.len();
    }
    Ok(rewards)
}

/// `chiron-cli serve` — runs the fault-tolerant mechanism-as-a-service
/// daemon until `POST /shutdown` or a SIGINT/SIGTERM, then drains:
/// running jobs park at their next checkpoint and the process exits
/// (with [`shutdown::EXIT_INTERRUPTED`] when signalled).
pub fn serve(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&[
        "addr",
        "workers",
        "queue-cap",
        "inflight",
        "retry-max",
        "backoff-ms",
        "checkpoint-every",
        "deadline-ms",
        "state-dir",
        "telemetry",
        "jobs",
    ])?;
    apply_jobs(args, rt)?;
    let telemetry = telemetry_from(args, rt)?;

    let mut cfg = ServeConfig::from_runtime(rt);
    if let Some(addr) = args.options.get("addr") {
        cfg.addr = addr.clone();
    }
    cfg.workers = args.parse_or("workers", cfg.workers)?;
    cfg.max_inflight = args.parse_or("inflight", cfg.workers)?;
    cfg.queue_cap = args.parse_or("queue-cap", cfg.queue_cap)?;
    cfg.retry_max = args.parse_or("retry-max", cfg.retry_max)?;
    cfg.backoff_base_ms = args.parse_or("backoff-ms", cfg.backoff_base_ms)?;
    cfg.checkpoint_every = args.parse_or("checkpoint-every", cfg.checkpoint_every)?;
    if let Some(raw) = args.options.get("deadline-ms") {
        let ms: u64 = raw.parse().map_err(|_| {
            CliError::Invalid(format!("invalid --deadline-ms value '{raw}' (expected ms)"))
        })?;
        cfg.default_deadline_ms = Some(ms);
    }
    if let Some(dir) = args.options.get("state-dir") {
        cfg.state_dir = dir.into();
    }
    for (name, value) in [
        ("--workers", cfg.workers),
        ("--queue-cap", cfg.queue_cap),
        ("--inflight", cfg.max_inflight),
        ("--checkpoint-every", cfg.checkpoint_every),
    ] {
        if value == 0 {
            return Err(CliError::Invalid(format!("{name} must be at least 1")));
        }
    }

    shutdown::install();
    shutdown::reset();
    let daemon = Daemon::start(cfg).map_err(CliError::Serve)?;
    println!("serve: listening on {}", daemon.addr());
    println!(
        "serve: POST /jobs | GET /jobs/:id | DELETE /jobs/:id | \
         GET /healthz | GET /metrics | POST /shutdown"
    );
    let signalled = loop {
        if shutdown::requested() {
            break true;
        }
        if daemon.is_stopping() {
            break false;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    println!("serve: draining (running jobs park at their next checkpoint)");
    daemon.join(std::time::Duration::from_secs(30));
    println!("serve: stopped");
    finish_telemetry(telemetry)?;
    if signalled {
        Err(CliError::Interrupted)
    } else {
        Ok(())
    }
}

/// `chiron-cli eval` — evaluates a snapshot (or a fresh policy) on a task,
/// optionally replicated across environment seeds (`--seeds N`, parallel
/// seed cells).
pub fn eval(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&[
        "dataset",
        "nodes",
        "budget",
        "seed",
        "seeds",
        "model",
        "trace",
        "events",
        "telemetry",
        "jobs",
    ])?;
    let kind = dataset_from(args.str_or("dataset", "mnist"))?;
    let nodes: usize = args.parse_or("nodes", 5)?;
    let budget: f64 = args.parse_or("budget", 100.0)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let seeds: usize = args.parse_or("seeds", 1)?;
    if seeds == 0 {
        return Err(CliError::Invalid("--seeds must be at least 1".into()));
    }
    if seeds > 1 && (args.options.contains_key("trace") || args.options.contains_key("events")) {
        return Err(CliError::Invalid(
            "--trace/--events record a single episode; drop them or use --seeds 1".into(),
        ));
    }
    apply_jobs(args, rt)?;
    let telemetry = telemetry_from(args, rt)?;

    let mut env = build_env(kind, nodes, budget, seed, rt)?;
    let mut mech = Chiron::new(&env, ChironConfig::paper(), seed);
    if let Some(path) = args.options.get("model") {
        let json = std::fs::read_to_string(path)?;
        let snapshot = ChironSnapshot::from_json(&json).map_err(|e| CliError::Snapshot {
            path: path.clone(),
            source: chiron::Error::from(e),
        })?;
        snapshot
            .restore(&mut mech)
            .map_err(|e| CliError::Snapshot {
                path: path.clone(),
                source: chiron::Error::from(e),
            })?;
        println!(
            "loaded snapshot {path} ({} episodes trained)",
            mech.episodes_trained()
        );
    } else {
        println!("no --model given: evaluating an untrained policy");
    }

    if seeds > 1 {
        eval_seed_cells(&mut mech, kind, nodes, budget, seed, seeds, rt)?;
        return finish_telemetry(telemetry);
    }

    let mut events = EventLog::new();
    let (summary, records) = mech.run_episode_logged(&mut env, 0, &mut events);
    print_summary("evaluation", &summary);

    if let Some(path) = args.options.get("trace") {
        std::fs::write(path, rounds_to_csv(&records))?;
        println!("round trace written to {path}");
    }
    if let Some(path) = args.options.get("events") {
        std::fs::write(path, events.to_jsonl())?;
        println!(
            "{} resilience events written to {path}",
            events.entries().len()
        );
    }
    finish_telemetry(telemetry)
}

/// Multi-seed evaluation: one coarse task per environment seed, each on a
/// snapshot-restored replica of `mech`, summaries printed in seed order
/// plus a mean ± std digest. Bitwise-identical to evaluating the seeds
/// one after another.
fn eval_seed_cells(
    mech: &mut Chiron,
    kind: DatasetKind,
    nodes: usize,
    budget: f64,
    base_seed: u64,
    seeds: usize,
    rt: &RuntimeConfig,
) -> Result<(), CliError> {
    let snap = mech.snapshot();
    let cells: Vec<u64> = (0..seeds as u64)
        .map(|r| base_seed.wrapping_add(r))
        .collect();
    let results: Vec<Result<EpisodeSummary, CliError>> = scope::scope("cli.eval_seeds", |s| {
        s.map(&cells, |_, &cell_seed| {
            let mut env = build_env(kind, nodes, budget, cell_seed, rt)?;
            let mut replica = Chiron::new(&env, ChironConfig::paper(), cell_seed);
            snap.restore(&mut replica).map_err(|e| CliError::Snapshot {
                path: "<in-memory snapshot>".into(),
                source: chiron::Error::from(e),
            })?;
            let (summary, _) = replica.run_episode(&mut env);
            Ok(summary)
        })
    });
    let mut summaries = Vec::with_capacity(seeds);
    for (cell_seed, result) in cells.iter().zip(results) {
        let summary = result?;
        print_summary(&format!("evaluation (seed {cell_seed})"), &summary);
        summaries.push(summary);
    }
    let accs: Vec<f64> = summaries.iter().map(|s| s.final_accuracy).collect();
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / accs.len() as f64;
    println!(
        "across {seeds} seeds: accuracy {mean:.4} ± {:.4}",
        var.sqrt()
    );
    Ok(())
}

/// Parses a comma-separated budget list like `60,80,100`.
fn budgets_from(raw: &str) -> Result<Vec<f64>, CliError> {
    let budgets: Result<Vec<f64>, _> = raw.split(',').map(|t| t.trim().parse::<f64>()).collect();
    let budgets = budgets.map_err(|_| CliError::Invalid(format!("invalid budget list '{raw}'")))?;
    if budgets.is_empty() || budgets.iter().any(|&b| b <= 0.0) {
        return Err(CliError::Invalid("budgets must be positive".into()));
    }
    Ok(budgets)
}

/// `chiron-cli sweep` — trains once, evaluates across a budget list, and
/// writes a CSV (the CLI twin of the Fig. 4 protocol).
pub fn sweep(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&[
        "dataset", "nodes", "budgets", "episodes", "seed", "out", "jobs",
    ])?;
    let kind = dataset_from(args.str_or("dataset", "mnist"))?;
    let nodes: usize = args.parse_or("nodes", 5)?;
    let budgets = budgets_from(args.str_or("budgets", "60,80,100,120,140"))?;
    let episodes: usize = args.parse_or("episodes", 300)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    apply_jobs(args, rt)?;

    let train_budget = budgets[budgets.len() / 2];
    println!(
        "sweep: dataset {kind}, {nodes} nodes, budgets {budgets:?}, training at η = {train_budget}"
    );
    let mut env = build_env(kind, nodes, train_budget, seed, rt)?;
    let mut mech = Chiron::new(&env, ChironConfig::paper(), seed);
    mech.train(&mut env, episodes);

    let mut csv = String::from("budget,accuracy,rounds,total_time,time_efficiency,spent\n");
    println!(
        "{:>9} {:>9} {:>7} {:>10} {:>10}",
        "budget", "accuracy", "rounds", "time (s)", "time-eff %"
    );
    for &budget in &budgets {
        let mut env = build_env(kind, nodes, budget, seed, rt)?;
        let (s, _) = mech.run_episode(&mut env);
        println!(
            "{budget:>9} {:>9.4} {:>7} {:>10.1} {:>10.1}",
            s.final_accuracy,
            s.rounds,
            s.total_time,
            s.mean_time_efficiency * 100.0
        );
        csv.push_str(&format!(
            "{budget},{:.4},{},{:.2},{:.4},{:.2}\n",
            s.final_accuracy, s.rounds, s.total_time, s.mean_time_efficiency, s.spent
        ));
    }
    if let Some(path) = args.options.get("out") {
        std::fs::write(path, csv)?;
        println!("sweep CSV written to {path}");
    }
    Ok(())
}

/// `chiron-cli run` — executes an experiment file (`--config exp.json`),
/// or writes a starting template (`--init exp.json`).
pub fn run(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&["config", "init", "out", "telemetry", "jobs"])?;
    apply_jobs(args, rt)?;
    if let Some(path) = args.options.get("init") {
        let json = serde_json::to_string_pretty(&ExperimentConfig::template()).map_err(|e| {
            CliError::Invalid(format!("experiment template failed to serialize: {e}"))
        })?;
        std::fs::write(path, json)?;
        println!("experiment template written to {path} — edit and run with --config");
        return Ok(());
    }
    let path = args.str_required("config")?;
    let json = std::fs::read_to_string(path)?;
    let exp: ExperimentConfig = serde_json::from_str(&json).map_err(|e| CliError::Experiment {
        path: path.to_owned(),
        source: e,
    })?;
    let telemetry = telemetry_from(args, rt)?;

    println!("experiment: {}", exp.description);
    println!(
        "  dataset {}, {} nodes, η = {}, {} episodes, seed {}",
        exp.env.dataset.kind, exp.env.fleet.nodes, exp.env.budget, exp.episodes, exp.seed
    );
    let mut env = EdgeLearningEnv::new(exp.env.clone(), exp.seed);
    let mut mech = Chiron::new(&env, exp.chiron.clone(), exp.seed);
    let t0 = std::time::Instant::now();
    mech.train(&mut env, exp.episodes);
    println!("trained in {:.1?}", t0.elapsed());
    let mut env = EdgeLearningEnv::new(exp.env.clone(), exp.seed);
    let (summary, _) = mech.run_episode(&mut env);
    print_summary("evaluation", &summary);

    if let Some(out) = args.options.get("out") {
        std::fs::write(out, mech.snapshot().to_json())?;
        println!("snapshot written to {out}");
    }
    finish_telemetry(telemetry)
}

/// The mechanisms `compare` trains when `--mechanisms` is not given (the
/// paper's contenders plus the two reference policies).
pub const COMPARE_DEFAULT_MECHANISMS: &str = "chiron,drl-based,greedy,dp-planner,static";

/// `chiron-cli compare` — trains every selected mechanism and prints the
/// comparison. `--mechanisms a,b,c` picks registry entries by id (default
/// [`COMPARE_DEFAULT_MECHANISMS`]); an unknown id is a typed error listing
/// every known id.
pub fn compare(args: &ParsedArgs, rt: &RuntimeConfig) -> Result<(), CliError> {
    args.reject_unknown(&[
        "dataset",
        "nodes",
        "budget",
        "episodes",
        "seed",
        "jobs",
        "mechanisms",
    ])?;
    let kind = dataset_from(args.str_or("dataset", "mnist"))?;
    let nodes: usize = args.parse_or("nodes", 5)?;
    let budget: f64 = args.parse_or("budget", 100.0)?;
    let episodes: usize = args.parse_or("episodes", 300)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let specs = parse_ids(args.str_or("mechanisms", COMPARE_DEFAULT_MECHANISMS))?;
    apply_jobs(args, rt)?;

    println!(
        "comparing mechanisms: dataset {kind}, {nodes} nodes, η = {budget}, {episodes} episodes\n"
    );
    let env0 = build_env(kind, nodes, budget, seed, rt)?;
    let params = MechanismParams::new(seed);
    let mut mechanisms: Vec<Box<dyn Mechanism>> = specs
        .iter()
        .map(|spec| (spec.build)(&env0, &params).map_err(CliError::Mechanism))
        .collect::<Result<_, _>>()?;

    // Each mechanism trains and evaluates in its own envs, so the cells
    // run as one coarse scope; rows join in the requested id order.
    fn cell(
        mech: &mut dyn Mechanism,
        kind: DatasetKind,
        nodes: usize,
        budget: f64,
        episodes: usize,
        seed: u64,
        rt: &RuntimeConfig,
    ) -> Result<(String, EpisodeSummary), CliError> {
        let mut env = build_env(kind, nodes, budget, seed, rt)?;
        mech.train(&mut env, episodes);
        let mut env = build_env(kind, nodes, budget, seed, rt)?;
        let (summary, _) = mech.run_episode(&mut env);
        Ok((mech.name(), summary))
    }
    type CellResult = Result<(String, EpisodeSummary), CliError>;
    let results: Vec<CellResult> = scope::scope("cli.compare", |s| {
        let tasks: Vec<Box<dyn FnOnce() -> CellResult + Send + '_>> = mechanisms
            .iter_mut()
            .map(|mech| {
                Box::new(move || cell(mech.as_mut(), kind, nodes, budget, episodes, seed, rt))
                    as Box<dyn FnOnce() -> CellResult + Send + '_>
            })
            .collect();
        s.run(tasks)
    });
    let rows: Vec<(String, EpisodeSummary)> = results.into_iter().collect::<Result<Vec<_>, _>>()?;

    println!(
        "{:<12} {:>9} {:>7} {:>10} {:>10} {:>9}",
        "mechanism", "accuracy", "rounds", "time (s)", "time-eff %", "spent"
    );
    for (name, s) in &rows {
        println!(
            "{:<12} {:>9.4} {:>7} {:>10.1} {:>10.1} {:>9.1}",
            name,
            s.final_accuracy,
            s.rounds,
            s.total_time,
            s.mean_time_efficiency * 100.0,
            s.spent
        );
    }
    Ok(())
}

/// `chiron-cli info` — build and paper information.
pub fn info() {
    println!("chiron-cli {}", env!("CARGO_PKG_VERSION"));
    println!(
        "reproduction of: Liu, Wu, Zhan, Guo, Hong — \"Incentive-Driven \
         Long-term Optimization for Edge Learning by Hierarchical \
         Reinforcement Mechanism\", IEEE ICDCS 2021"
    );
    println!("datasets: mnist | fashion | cifar | tiny (synthetic profiles)");
    println!("see README.md and EXPERIMENTS.md for the full reproduction record");
}

/// Usage text.
pub fn usage() -> String {
    "\
usage: chiron-cli <command> [--flag value]...

commands:
  train     train the hierarchical mechanism
            --dataset mnist|fashion|cifar|tiny (mnist)
            --nodes N (5)  --budget η (100)  --episodes E (300)
            --seed S (42)  --out snapshot.json  --jobs J (pool size)
            --checkpoint run.json  (crash-resumable run checkpoint)
            --checkpoint-every E (25)  (episodes between checkpoints)
            --telemetry run.jsonl  (structured telemetry stream)
            SIGINT/SIGTERM stop at an episode boundary, flush the
            checkpoint/snapshot, and exit with code 130
  eval      evaluate a trained snapshot (or an untrained policy)
            --model snapshot.json  --trace rounds.csv
            --events events.jsonl  (resilience event log, one JSON per line)
            --seeds N  (replicate over N env seeds, parallel cells)
            --telemetry run.jsonl  --dataset …  --nodes N  --budget η
            --seed S  --jobs J
  compare   train and compare mechanisms from the registry
            --mechanisms a,b,c  (default chiron,drl-based,greedy,dp-planner,static;
            also: flat-ppo, lemma-oracle, fmore, stackelberg)
            (mechanisms train concurrently; output order follows the id list)
            --dataset …  --nodes N  --budget η  --episodes E  --seed S  --jobs J
  sweep     train once, evaluate across budgets, optionally write CSV
            --budgets 60,80,100,120,140  --out sweep.csv
            --dataset …  --nodes N  --episodes E  --seed S  --jobs J
  run       execute a fully specified experiment file
            --config exp.json  [--out snapshot.json]  [--telemetry run.jsonl]
            --init exp.json    (write a starting template)  --jobs J
  serve     run the mechanism-as-a-service daemon (std-only HTTP/1.1)
            --addr HOST:PORT (127.0.0.1:0)  --workers N (2)
            --queue-cap N (64)  --inflight N (workers)
            --retry-max N (3)  --backoff-ms MS (100)
            --checkpoint-every E (5)  --deadline-ms MS (none)
            --state-dir DIR (temp)  --telemetry run.jsonl  --jobs J
            endpoints: POST /jobs  GET /jobs/:id  DELETE /jobs/:id
                       GET /healthz  GET /metrics  POST /shutdown
            SIGINT/SIGTERM (or POST /shutdown) drain then stop
  info      version and paper reference

environment variables (read once at startup; see README.md for the table):
  CHIRON_TELEMETRY=PATH   stream telemetry JSONL to PATH (same as --telemetry)
  CHIRON_FAULT_SEED=U64   install the standard stochastic fault process
  CHIRON_QUORUM=N         require ≥ N responders per round (refund otherwise)
  CHIRON_DEADLINE_SLACK=F evict responders slower than F x the Lemma-1 deadline
  CHIRON_FLEET_SAMPLE=K   price a K-node sample per round (0/unset = full fleet)
  CHIRON_FLEET_CLUSTERS=C two-level aggregation over C edge clusters (default 1)
  CHIRON_THREADS=N        worker-pool size    CHIRON_SCRATCH_CAP=MiB scratch cap
  CHIRON_JOBS=N           coarse job count (same as --jobs)
  CHIRON_COARSE=0|1       disable/enable coarse-grained scheduling (default 1)
  CHIRON_TOURNAMENT_EPISODES / _SEEDS / _MECHS
                          bench_tournament grid: training episodes per cell
                          (40), replications (3), registry ids (all entries)
  CHIRON_SERVE_ADDR / _WORKERS / _QUEUE_CAP / _INFLIGHT / _RETRY_MAX /
  CHIRON_SERVE_BACKOFF_MS / _CKPT_EVERY / _DEADLINE_MS / _STATE_DIR
                          serve daemon defaults (flags override)
"
    .to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn rt() -> RuntimeConfig {
        RuntimeConfig::from_env()
    }

    #[test]
    fn dataset_names_resolve() {
        assert_eq!(dataset_from("mnist").unwrap(), DatasetKind::MnistLike);
        assert_eq!(dataset_from("fashion").unwrap(), DatasetKind::FashionLike);
        assert_eq!(dataset_from("cifar10").unwrap(), DatasetKind::Cifar10Like);
        assert!(dataset_from("imagenet").is_err());
    }

    #[test]
    fn build_env_validates() {
        assert!(build_env(DatasetKind::MnistLike, 0, 100.0, 0, &rt()).is_err());
        assert!(build_env(DatasetKind::MnistLike, 5, 0.0, 0, &rt()).is_err());
        let env = build_env(DatasetKind::MnistLike, 3, 50.0, 0, &rt()).expect("valid");
        assert_eq!(env.num_nodes(), 3);
    }

    #[test]
    fn train_and_eval_round_trip() {
        let dir = std::env::temp_dir().join("chiron_cli_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let model = dir.join("m.json");
        let trace = dir.join("t.csv");
        let model_s = model.to_str().expect("utf8 path");
        let trace_s = trace.to_str().expect("utf8 path");

        let args = parse(&[
            "train",
            "--episodes",
            "2",
            "--budget",
            "40",
            "--out",
            model_s,
        ])
        .expect("parse");
        train(&args, &rt()).expect("train runs");
        assert!(model.exists());

        let args = parse(&[
            "eval", "--model", model_s, "--budget", "40", "--trace", trace_s,
        ])
        .expect("parse");
        eval(&args, &rt()).expect("eval runs");
        let csv = std::fs::read_to_string(&trace).expect("trace written");
        assert!(csv.starts_with("round,accuracy"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_lists_parse_and_validate() {
        assert_eq!(budgets_from("60, 80,100").unwrap(), vec![60.0, 80.0, 100.0]);
        assert!(budgets_from("60,abc").is_err());
        assert!(budgets_from("60,-5").is_err());
        assert!(budgets_from("").is_err());
    }

    #[test]
    fn sweep_writes_csv() {
        let dir = std::env::temp_dir().join("chiron_cli_sweep");
        std::fs::create_dir_all(&dir).expect("tmp");
        let out = dir.join("sweep.csv");
        let out_s = out.to_str().expect("utf8");
        let args = parse(&[
            "sweep",
            "--episodes",
            "2",
            "--budgets",
            "30,40",
            "--out",
            out_s,
        ])
        .expect("parse");
        sweep(&args, &rt()).expect("sweep runs");
        let csv = std::fs::read_to_string(&out).expect("csv written");
        assert_eq!(csv.lines().count(), 3); // header + 2 budgets
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn experiment_template_round_trips() {
        let t = ExperimentConfig::template();
        let json = serde_json::to_string(&t).expect("serializes");
        let back: ExperimentConfig = serde_json::from_str(&json).expect("parses");
        assert_eq!(back.seed, t.seed);
        assert_eq!(back.env.budget, t.env.budget);
        assert_eq!(back.chiron, t.chiron);
        // Reserialization is byte-stable, so the full config (env included)
        // round-trips losslessly.
        assert_eq!(serde_json::to_string(&back).expect("serializes"), json);
    }

    #[test]
    fn experiment_builder_overrides_and_validates() {
        let exp = ExperimentConfig::builder()
            .dataset(DatasetKind::Cifar10Like)
            .nodes(7)
            .budget(80.0)
            .episodes(10)
            .seed(9)
            .description("builder test")
            .build()
            .expect("valid");
        assert_eq!(exp.env.dataset.kind, DatasetKind::Cifar10Like);
        assert_eq!(exp.env.fleet.nodes, 7);
        assert_eq!(exp.env.budget, 80.0);
        assert_eq!(exp.episodes, 10);
        assert_eq!(exp.seed, 9);

        assert!(ExperimentConfig::builder().nodes(0).build().is_err());
        assert!(ExperimentConfig::builder().budget(-1.0).build().is_err());
        let bad_chiron = {
            let mut c = ChironConfig::paper();
            c.lambda = -1.0;
            c
        };
        let err = ExperimentConfig::builder()
            .chiron(bad_chiron)
            .build()
            .expect_err("invalid lambda");
        assert!(err.to_string().contains("lambda"));
    }

    #[test]
    fn run_init_then_config_executes() {
        let dir = std::env::temp_dir().join("chiron_cli_run");
        std::fs::create_dir_all(&dir).expect("tmp");
        let cfg = dir.join("exp.json");
        let cfg_s = cfg.to_str().expect("utf8");

        let args = parse(&["run", "--init", cfg_s]).expect("parse");
        run(&args, &rt()).expect("init writes template");

        // Shrink the template so the test is fast.
        let mut exp: ExperimentConfig =
            serde_json::from_str(&std::fs::read_to_string(&cfg).expect("read")).expect("parse");
        exp.episodes = 2;
        exp.env.budget = 40.0;
        std::fs::write(&cfg, serde_json::to_string(&exp).expect("ser")).expect("write");

        let args = parse(&["run", "--config", cfg_s]).expect("parse");
        run(&args, &rt()).expect("run executes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_rejects_malformed_config() {
        let dir = std::env::temp_dir().join("chiron_cli_badcfg");
        std::fs::create_dir_all(&dir).expect("tmp");
        let cfg = dir.join("bad.json");
        std::fs::write(&cfg, "{not json").expect("write");
        let args = parse(&["run", "--config", cfg.to_str().expect("utf8")]).expect("parse");
        let err = run(&args, &rt()).expect_err("malformed config");
        assert!(matches!(err, CliError::Experiment { .. }));
        assert!(std::error::Error::source(&err).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_rejects_mismatched_snapshot() {
        let dir = std::env::temp_dir().join("chiron_cli_mismatch");
        std::fs::create_dir_all(&dir).expect("tmp");
        let model = dir.join("m5.json");
        let model_s = model.to_str().expect("utf8 path");

        let args = parse(&[
            "train",
            "--episodes",
            "1",
            "--budget",
            "40",
            "--nodes",
            "5",
            "--out",
            model_s,
        ])
        .expect("parse");
        train(&args, &rt()).expect("train runs");

        // Evaluating with a different node count must fail cleanly, with the
        // typed checkpoint error reachable through the source chain.
        let args = parse(&["eval", "--model", model_s, "--nodes", "4"]).expect("parse");
        let err = eval(&args, &rt()).expect_err("shape mismatch");
        assert!(err.to_string().contains("--nodes"));
        assert!(matches!(
            err,
            CliError::Snapshot {
                source: chiron::Error::Checkpoint(_),
                ..
            }
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_writes_events_jsonl() {
        let dir = std::env::temp_dir().join("chiron_cli_events");
        std::fs::create_dir_all(&dir).expect("tmp");
        let events = dir.join("events.jsonl");
        let events_s = events.to_str().expect("utf8 path");

        let args = parse(&["eval", "--budget", "40", "--events", events_s]).expect("parse");
        eval(&args, &rt()).expect("eval runs");
        let log = std::fs::read_to_string(&events).expect("events written");
        // A fault-free default run logs nothing, but every line present
        // must be a standalone JSON object.
        assert!(log.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fault_seed_env_var_installs_fault_process() {
        std::env::set_var("CHIRON_FAULT_SEED", "77");
        let rt_set = RuntimeConfig::from_env();
        std::env::remove_var("CHIRON_FAULT_SEED");
        let env = build_env(DatasetKind::MnistLike, 3, 50.0, 0, &rt_set).expect("valid");
        let config = env.fault_process_config().expect("fault process installed");
        assert_eq!(config.seed, 77);
        assert!(config.availability.is_some());

        // Malformed values are ignored rather than fatal.
        std::env::set_var("CHIRON_FAULT_SEED", "not-a-number");
        let rt_bad = RuntimeConfig::from_env();
        std::env::remove_var("CHIRON_FAULT_SEED");
        let env = build_env(DatasetKind::MnistLike, 3, 50.0, 0, &rt_bad).expect("valid");
        assert!(env.fault_process_config().is_none());
    }

    #[test]
    fn fleet_sample_env_var_switches_on_sampling() {
        std::env::set_var("CHIRON_FLEET_SAMPLE", "2");
        let rt_set = RuntimeConfig::from_env();
        std::env::remove_var("CHIRON_FLEET_SAMPLE");
        let env = build_env(DatasetKind::MnistLike, 5, 50.0, 0, &rt_set).expect("valid");
        assert_eq!(
            env.config().participation,
            chiron_fedsim::Participation::Sampled { per_round: 2 }
        );
        assert_eq!(env.selection_for(1).len(), 2);

        // 0 (and unset) keep full participation.
        std::env::set_var("CHIRON_FLEET_SAMPLE", "0");
        let rt_zero = RuntimeConfig::from_env();
        std::env::remove_var("CHIRON_FLEET_SAMPLE");
        let env = build_env(DatasetKind::MnistLike, 5, 50.0, 0, &rt_zero).expect("valid");
        assert_eq!(
            env.config().participation,
            chiron_fedsim::Participation::Full
        );
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let args = parse(&["train", "--bogus", "1"]).expect("parse");
        let err = train(&args, &rt()).expect_err("unknown flag");
        assert!(matches!(err, CliError::Arg(_)));
    }
}
