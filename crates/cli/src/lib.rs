//! # chiron-cli
//!
//! The command-line interface of the Chiron reproduction: train the
//! hierarchical incentive mechanism, persist and evaluate snapshots, and
//! compare against every baseline — without writing any Rust.
//!
//! ```text
//! chiron-cli train   --dataset mnist --budget 100 --episodes 300 --out model.json
//! chiron-cli eval    --model model.json --budget 140 --trace rounds.csv
//! chiron-cli compare --dataset fashion --budget 100
//! chiron-cli sweep   --budgets 60,80,100,120,140 --out sweep.csv
//! chiron-cli info
//! ```

pub mod args;
pub mod commands;
