//! Entry point: dispatches to [`chiron_cli::commands`].

use chiron_cli::args::parse;
use chiron_cli::commands::{self, usage};
use chiron_telemetry::RuntimeConfig;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse(&raw) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            std::process::exit(2);
        }
    };
    // Every CHIRON_* variable is read once, here, and passed down.
    let rt = RuntimeConfig::from_env();
    let result = match parsed.command.as_deref() {
        Some("train") => commands::train(&parsed, &rt),
        Some("eval") => commands::eval(&parsed, &rt),
        Some("compare") => commands::compare(&parsed, &rt),
        Some("sweep") => commands::sweep(&parsed, &rt),
        Some("run") => commands::run(&parsed, &rt),
        Some("serve") => commands::serve(&parsed, &rt),
        Some("info") => {
            commands::info();
            Ok(())
        }
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n\n{}", usage());
            std::process::exit(2);
        }
        None => {
            print!("{}", usage());
            Ok(())
        }
    };
    if let Err(e) = result {
        // An interrupted run flushed its state cleanly; the distinct exit
        // code lets scripts tell it apart from a failure.
        if matches!(e, commands::CliError::Interrupted) {
            eprintln!("{e}");
            std::process::exit(chiron_serve::shutdown::EXIT_INTERRUPTED);
        }
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
