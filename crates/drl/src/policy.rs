//! Diagonal-Gaussian MLP policy for continuous actions.

use chiron_nn::models::mlp;
use chiron_nn::Sequential;
use chiron_tensor::{scratch, RngState, Tensor, TensorRng};

/// A stochastic policy `π(a|s) = N(μ_θ(s), σ²I)` with a tanh MLP producing
/// the mean and a scheduled (decaying) exploration std.
///
/// The paper's agents act in continuous price spaces, so a policy-gradient
/// method with a Gaussian head is the natural choice (Section V). The
/// exploration std follows a deterministic decay schedule rather than being
/// a learned parameter — this keeps PPO updates well-conditioned on the
/// small networks used here while reproducing the usual
/// explore-then-exploit pattern.
///
/// # Examples
///
/// ```
/// use chiron_drl::GaussianPolicy;
///
/// let mut policy = GaussianPolicy::new(3, 2, &[32], 0.5, 7);
/// let (action, log_prob) = policy.sample(&[0.1, -0.2, 0.5]);
/// assert_eq!(action.len(), 2);
/// assert!(log_prob.is_finite());
/// ```
pub struct GaussianPolicy {
    net: Sequential,
    action_dim: usize,
    state_dim: usize,
    std: f64,
    rng: TensorRng,
}

impl GaussianPolicy {
    /// Builds the policy: `state_dim → hidden… → action_dim` tanh MLP with
    /// Xavier init, exploration std `std`.
    ///
    /// # Panics
    ///
    /// Panics if dims are zero or `std` is not positive.
    pub fn new(state_dim: usize, action_dim: usize, hidden: &[usize], std: f64, seed: u64) -> Self {
        assert!(state_dim > 0 && action_dim > 0, "dims must be positive");
        assert!(std > 0.0, "exploration std must be positive");
        let mut rng = TensorRng::seed_from(seed);
        let mut dims = vec![state_dim];
        dims.extend_from_slice(hidden);
        dims.push(action_dim);
        let net = mlp(&dims, &mut rng);
        Self {
            net,
            action_dim,
            state_dim,
            std,
            rng: TensorRng::seed_from(seed ^ 0xACDC),
        }
    }

    /// Action dimensionality.
    pub fn action_dim(&self) -> usize {
        self.action_dim
    }

    /// State dimensionality.
    pub fn state_dim(&self) -> usize {
        self.state_dim
    }

    /// Current exploration std.
    pub fn std(&self) -> f64 {
        self.std
    }

    /// Sets the exploration std (the decay schedule lives in the agent).
    ///
    /// # Panics
    ///
    /// Panics if `std` is not positive.
    pub fn set_std(&mut self, std: f64) {
        assert!(std > 0.0, "exploration std must be positive");
        self.std = std;
    }

    /// The mean action `μ_θ(s)`.
    pub fn mean(&mut self, state: &[f64]) -> Vec<f64> {
        let x = state_tensor(state, self.state_dim);
        let mu = self.net.forward(&x, false);
        mu.as_slice().iter().map(|&v| v as f64).collect()
    }

    /// Batched forward over a `(B, state_dim)` batch for PPO updates, in
    /// training mode. Row blocks of `block_rows` fan out across the worker
    /// pool; buffers that fit one block run directly on the network, byte
    /// identical to a plain forward.
    pub(crate) fn mean_batch_pass(
        &mut self,
        states: &Tensor,
        block_rows: usize,
    ) -> chiron_nn::BatchedPass {
        chiron_nn::forward_batched(&mut self.net, states, true, block_rows)
    }

    /// Samples `a ~ N(μ(s), σ²)` and returns `(a, log π(a|s))`.
    pub fn sample(&mut self, state: &[f64]) -> (Vec<f64>, f64) {
        let mu = self.mean(state);
        let mut action = Vec::with_capacity(self.action_dim);
        for &m in &mu {
            action.push(m + self.rng.normal() * self.std);
        }
        let log_prob = self.log_prob(&mu, &action);
        (action, log_prob)
    }

    /// `log N(a; μ, σ²I)`.
    pub fn log_prob(&self, mean: &[f64], action: &[f64]) -> f64 {
        assert_eq!(mean.len(), action.len(), "mean/action dim mismatch");
        let var = self.std * self.std;
        let mut lp = -0.5 * (mean.len() as f64) * (2.0 * std::f64::consts::PI * var).ln();
        for (&m, &a) in mean.iter().zip(action) {
            lp -= (a - m) * (a - m) / (2.0 * var);
        }
        lp
    }

    /// Mutable access to the underlying network for optimizer steps.
    pub(crate) fn net_mut(&mut self) -> &mut Sequential {
        &mut self.net
    }

    /// The exploration RNG's serializable state, for crash-safe resume.
    pub fn rng_state(&self) -> RngState {
        self.rng.state()
    }

    /// Restores the exploration RNG from a captured state.
    ///
    /// Returns `false` — leaving the RNG untouched — if the state words are
    /// malformed (wrong lengths).
    pub fn restore_rng_state(&mut self, state: &RngState) -> bool {
        match TensorRng::from_state(state) {
            Some(rng) => {
                self.rng = rng;
                true
            }
            None => false,
        }
    }
}

/// Converts a state slice into a `(1, dim)` tensor.
pub(crate) fn state_tensor(state: &[f64], dim: usize) -> Tensor {
    assert_eq!(
        state.len(),
        dim,
        "state has {} entries, expected {dim}",
        state.len()
    );
    let mut data = scratch::take_vec_with_capacity(dim);
    data.extend(state.iter().map(|&v| v as f32));
    Tensor::from_vec(data, &[1, dim])
}

/// Stacks state slices (yielded by any sized iterator) into a `(B, dim)`
/// tensor without an intermediate `Vec<Vec<f64>>`.
pub(crate) fn states_tensor<'a, I>(states: I, dim: usize) -> Tensor
where
    I: IntoIterator<Item = &'a [f64]>,
    I::IntoIter: ExactSizeIterator,
{
    let it = states.into_iter();
    let count = it.len();
    assert!(count > 0, "need at least one state");
    let mut data = scratch::take_vec_with_capacity(count * dim);
    for s in it {
        assert_eq!(s.len(), dim, "state dim mismatch");
        data.extend(s.iter().map(|&v| v as f32));
    }
    Tensor::from_vec(data, &[count, dim])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_seeded() {
        let mut a = GaussianPolicy::new(2, 1, &[8], 0.3, 5);
        let mut b = GaussianPolicy::new(2, 1, &[8], 0.3, 5);
        let s = [0.2, -0.1];
        assert_eq!(a.sample(&s), b.sample(&s));
    }

    #[test]
    fn log_prob_peaks_at_mean() {
        let policy = GaussianPolicy::new(1, 1, &[4], 0.5, 0);
        let mu = [0.3];
        let at_mean = policy.log_prob(&mu, &[0.3]);
        let off_mean = policy.log_prob(&mu, &[0.8]);
        assert!(at_mean > off_mean);
    }

    #[test]
    fn log_prob_matches_gaussian_density() {
        let policy = GaussianPolicy::new(1, 1, &[4], 1.0, 0);
        // Standard normal at 0: log(1/sqrt(2π)) ≈ −0.9189.
        let lp = policy.log_prob(&[0.0], &[0.0]);
        assert!((lp + 0.9189385).abs() < 1e-5);
    }

    #[test]
    fn samples_concentrate_with_small_std() {
        let mut policy = GaussianPolicy::new(1, 1, &[8], 1.0, 1);
        let s = [0.5];
        let mu = policy.mean(&s)[0];
        policy.set_std(1e-6);
        let (a, _) = policy.sample(&s);
        assert!((a[0] - mu).abs() < 1e-4);
    }

    #[test]
    fn mean_is_deterministic() {
        let mut policy = GaussianPolicy::new(3, 2, &[8], 0.2, 2);
        let s = [0.1, 0.2, 0.3];
        assert_eq!(policy.mean(&s), policy.mean(&s));
    }

    #[test]
    #[should_panic(expected = "expected 3")]
    fn state_dim_is_validated() {
        let mut policy = GaussianPolicy::new(3, 1, &[4], 0.2, 0);
        let _ = policy.mean(&[0.0]);
    }
}
