//! Proximal Policy Optimization with the clipped surrogate objective.

use crate::buffer::RolloutBuffer;
use crate::policy::{state_tensor, states_tensor, GaussianPolicy};
use chiron_nn::models::mlp;
use chiron_nn::{
    clip_grad_norm, forward_batched, Adam, Checkpoint, CheckpointError, MseLoss, Optimizer,
    Sequential,
};
use chiron_tensor::{pool, scratch, Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// Rows per block for the full-batch actor/critic passes in
/// [`PpoAgent::update`]. Typical rollout buffers (tens of transitions) fit
/// a single block — byte-identical to the unbatched pass — while oversized
/// buffers split deterministically across the worker pool.
const PPO_BLOCK_ROWS: usize = 256;

/// Transitions per block for the parallel clipped-surrogate loop. Each
/// transition's gradient row is written independently (gradients never sum
/// across transitions), so any partition yields bitwise-identical grads;
/// the per-block loss partials reduce in block-index order.
const SURROGATE_BLOCK: usize = 8;

/// PPO hyperparameters.
///
/// Defaults follow the paper's Section VI-A where specified (`γ = 0.95`,
/// learning-rate decay ×0.95 every 20 episodes) and standard PPO practice
/// elsewhere (clip 0.2, a handful of update epochs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor `γ` (paper: 0.95).
    pub gamma: f64,
    /// GAE λ (0 reproduces Algorithm 1's one-step TD advantages).
    pub gae_lambda: f64,
    /// Clipping radius ε of the surrogate ratio.
    pub clip: f64,
    /// Update epochs `M` per consumed buffer.
    pub epochs: usize,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Initial exploration std.
    pub std_init: f64,
    /// Multiplicative std decay applied per update.
    pub std_decay: f64,
    /// Exploration floor.
    pub std_min: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Normalize advantages per update (recommended).
    pub normalize_advantages: bool,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.95,
            gae_lambda: 0.95,
            clip: 0.2,
            epochs: 10,
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            std_init: 0.5,
            std_decay: 0.99,
            std_min: 0.05,
            max_grad_norm: 0.5,
            normalize_advantages: true,
        }
    }
}

impl PpoConfig {
    /// The paper's hyperparameters: `lr_a = lr_c = 3e-5`, `γ = 0.95`.
    /// (The paper decays the learning rate by 5 % every 20 episodes — the
    /// mechanism layer drives that via [`PpoAgent::decay_learning_rate`].)
    pub fn paper() -> Self {
        Self {
            actor_lr: 3e-5,
            critic_lr: 3e-5,
            ..Self::default()
        }
    }
}

/// An actor–critic PPO agent over continuous actions.
///
/// One `PpoAgent` instance is one of the paper's learners: it exposes
/// `act`/`value` for rollouts and `update` for the M-epoch clipped-PPO
/// improvement step that Algorithm 1 triggers at the end of each episode.
///
/// # Examples
///
/// ```
/// use chiron_drl::{PpoAgent, PpoConfig};
///
/// let mut agent = PpoAgent::new(4, 2, &[32, 32], PpoConfig::default(), 1);
/// let (action, log_prob) = agent.act(&[0.0, 0.1, 0.2, 0.3]);
/// assert_eq!(action.len(), 2);
/// assert!(log_prob.is_finite());
/// ```
pub struct PpoAgent {
    actor: GaussianPolicy,
    critic: Sequential,
    actor_opt: Adam,
    critic_opt: Adam,
    config: PpoConfig,
    state_dim: usize,
    updates: usize,
}

impl PpoAgent {
    /// Builds actor and critic MLPs with the given hidden sizes.
    ///
    /// # Panics
    ///
    /// Panics if dims are zero.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        hidden: &[usize],
        config: PpoConfig,
        seed: u64,
    ) -> Self {
        let actor = GaussianPolicy::new(state_dim, action_dim, hidden, config.std_init, seed);
        let mut dims = vec![state_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let critic = mlp(&dims, &mut TensorRng::seed_from(seed ^ 0xC217));
        Self {
            actor,
            critic,
            actor_opt: Adam::new(config.actor_lr),
            critic_opt: Adam::new(config.critic_lr),
            config,
            state_dim,
            updates: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Number of completed updates.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Current exploration std.
    pub fn exploration_std(&self) -> f64 {
        self.actor.std()
    }

    /// Samples a stochastic action, returning `(action, log_prob)`.
    pub fn act(&mut self, state: &[f64]) -> (Vec<f64>, f64) {
        self.actor.sample(state)
    }

    /// The deterministic (mean) action for evaluation.
    pub fn act_deterministic(&mut self, state: &[f64]) -> Vec<f64> {
        self.actor.mean(state)
    }

    /// The critic's value estimate `V(s)`.
    pub fn value(&mut self, state: &[f64]) -> f64 {
        let x = state_tensor(state, self.state_dim);
        self.critic.forward(&x, false).item() as f64
    }

    /// Multiplies both learning rates by `factor` (the paper decays by 0.95
    /// every 20 episodes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn decay_learning_rate(&mut self, factor: f32) {
        assert!(factor > 0.0, "decay factor must be positive");
        self.actor_opt
            .set_learning_rate(self.actor_opt.learning_rate() * factor);
        self.critic_opt
            .set_learning_rate(self.critic_opt.learning_rate() * factor);
    }

    /// One full PPO improvement: `epochs` passes of clipped-surrogate actor
    /// updates and TD-target critic regression over the whole buffer, then
    /// clears the buffer and decays exploration.
    ///
    /// Returns `(mean_actor_loss, mean_critic_loss)` across epochs.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn update(&mut self, buffer: &mut RolloutBuffer) -> (f64, f64) {
        assert!(!buffer.is_empty(), "PPO update on an empty buffer");
        let (returns, mut advantages) =
            buffer.compute_returns_and_advantages(self.config.gamma, self.config.gae_lambda);

        if self.config.normalize_advantages && advantages.len() > 1 {
            let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
            let var = advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f64>()
                / advantages.len() as f64;
            let std = var.sqrt().max(1e-8);
            for a in &mut advantages {
                *a = (*a - mean) / std;
            }
        }

        let n = buffer.len();
        let state_batch = states_tensor(
            buffer.transitions().iter().map(|t| t.state.as_slice()),
            self.state_dim,
        );
        let action_dim = self.actor.action_dim();
        let mut returns_data = scratch::take_vec_with_capacity(n);
        returns_data.extend(returns.iter().map(|&r| r as f32));
        let returns_t = Tensor::from_vec(returns_data, &[n, 1]);

        let mut actor_loss_acc = 0.0f64;
        let mut critic_loss_acc = 0.0f64;

        let clip = self.config.clip;
        for _ in 0..self.config.epochs {
            // --- Actor: clipped surrogate ---
            let actor_pass = self.actor.mean_batch_pass(&state_batch, PPO_BLOCK_ROWS);
            let var = self.actor.std() * self.actor.std();
            let mu = actor_pass.output().as_slice();
            let mut grad = scratch::take_vec(n * action_dim);
            // Each transition's gradient row is independent, so the loop
            // fans out over fixed transition blocks; per-block loss
            // partials reduce in block order, keeping the reported loss
            // identical for every thread count. The serial path iterates
            // the same blocks inline without the partials vector, so a
            // single-thread update stays allocation-free.
            let transitions = buffer.transitions();
            let surrogate_block = |block: usize, rows: &mut [f32]| {
                let t0 = block * SURROGATE_BLOCK;
                let mut loss = 0.0f64;
                for (r, g_row) in rows.chunks_mut(action_dim).enumerate() {
                    let i = t0 + r;
                    let tr = &transitions[i];
                    // log π_new(a|s) under the current mean.
                    let mut logp =
                        -0.5 * (action_dim as f64) * (2.0 * std::f64::consts::PI * var).ln();
                    for j in 0..action_dim {
                        let m = mu[i * action_dim + j] as f64;
                        let a = tr.action[j];
                        logp -= (a - m) * (a - m) / (2.0 * var);
                    }
                    let ratio = (logp - tr.log_prob).exp();
                    let adv = advantages[i];
                    let clipped = ratio.clamp(1.0 - clip, 1.0 + clip);
                    let surr = (ratio * adv).min(clipped * adv);
                    loss -= surr;
                    // Gradient flows only through the unclipped branch
                    // when it is the active minimum.
                    let ratio_active = (ratio * adv) <= (clipped * adv) + 1e-12;
                    if ratio_active {
                        // d(−ratio·adv)/dμ_j = −adv·ratio·d logp/dμ_j
                        //                    = −adv·ratio·(a_j − μ_j)/σ².
                        for (j, g) in g_row.iter_mut().enumerate() {
                            let m = mu[i * action_dim + j] as f64;
                            let a = tr.action[j];
                            let d = -adv * ratio * (a - m) / var;
                            *g = (d / n as f64) as f32;
                        }
                    }
                }
                loss
            };
            let loss: f64 = if pool::threads() > 1 {
                pool::parallel_chunks_map(&mut grad, SURROGATE_BLOCK * action_dim, |b, rows| {
                    surrogate_block(b, rows)
                })
                .iter()
                .sum()
            } else {
                grad.chunks_mut(SURROGATE_BLOCK * action_dim)
                    .enumerate()
                    .map(|(block, rows)| surrogate_block(block, rows))
                    .sum()
            };
            actor_loss_acc += loss / n as f64;
            let grad_t = Tensor::from_vec(grad, &[n, action_dim]);
            actor_pass.backward(self.actor.net_mut(), &grad_t);
            clip_grad_norm(self.actor.net_mut(), self.config.max_grad_norm);
            self.actor_opt.step(self.actor.net_mut());

            // --- Critic: regression onto bootstrapped returns ---
            let critic_pass = forward_batched(&mut self.critic, &state_batch, true, PPO_BLOCK_ROWS);
            let (closs, cgrad) = MseLoss.forward(critic_pass.output(), &returns_t);
            critic_loss_acc += closs as f64;
            critic_pass.backward(&mut self.critic, &cgrad);
            clip_grad_norm(&mut self.critic, self.config.max_grad_norm);
            self.critic_opt.step(&mut self.critic);
        }

        buffer.clear();
        self.updates += 1;
        let new_std = (self.actor.std() * self.config.std_decay).max(self.config.std_min);
        self.actor.set_std(new_std);

        let e = self.config.epochs as f64;
        (actor_loss_acc / e, critic_loss_acc / e)
    }
}

/// A serializable snapshot of a trained [`PpoAgent`]: actor and critic
/// parameters plus the exploration/update counters. Optimizer moments are
/// not stored — a restored agent is meant for evaluation or fine-tuning
/// with fresh optimizer state.
///
/// # Examples
///
/// ```
/// use chiron_drl::{AgentSnapshot, PpoAgent, PpoConfig};
///
/// let mut agent = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 0);
/// let snap = agent.snapshot("demo");
/// let mut twin = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 99);
/// snap.restore(&mut twin).expect("same architecture");
/// assert_eq!(
///     agent.act_deterministic(&[0.1, 0.2]),
///     twin.act_deterministic(&[0.1, 0.2]),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSnapshot {
    /// Free-form label.
    pub label: String,
    /// Actor network parameters.
    pub actor: Checkpoint,
    /// Critic network parameters.
    pub critic: Checkpoint,
    /// Exploration std at capture time.
    pub exploration_std: f64,
    /// Update count at capture time.
    pub updates: usize,
}

impl AgentSnapshot {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a JSON snapshot.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| e.to_string())
    }

    /// Restores the snapshot into `agent`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ArchitectureMismatch`] if either network
    /// differs from the snapshot's.
    pub fn restore(&self, agent: &mut PpoAgent) -> Result<(), CheckpointError> {
        self.actor.restore(agent.actor.net_mut())?;
        self.critic.restore(&mut agent.critic)?;
        agent.actor.set_std(self.exploration_std.max(1e-6));
        agent.updates = self.updates;
        Ok(())
    }
}

impl PpoAgent {
    /// Captures a serializable snapshot of the agent.
    pub fn snapshot(&mut self, label: &str) -> AgentSnapshot {
        AgentSnapshot {
            label: label.to_owned(),
            actor: Checkpoint::capture(self.actor.net_mut(), &format!("{label}-actor")),
            critic: Checkpoint::capture(&self.critic, &format!("{label}-critic")),
            exploration_std: self.actor.std(),
            updates: self.updates,
        }
    }
}

impl std::fmt::Debug for PpoAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PpoAgent(state {}, action {}, {} updates, std {:.3})",
            self.state_dim,
            self.actor.action_dim(),
            self.updates,
            self.actor.std()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-step continuous bandit: reward = −(a − target)².
    fn train_bandit(target: f64, iterations: usize, seed: u64) -> f64 {
        let mut agent = PpoAgent::new(
            1,
            1,
            &[16],
            PpoConfig {
                actor_lr: 3e-3,
                critic_lr: 3e-3,
                std_init: 0.6,
                std_decay: 0.97,
                ..PpoConfig::default()
            },
            seed,
        );
        for _ in 0..iterations {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let state = [1.0];
                let (action, log_prob) = agent.act(&state);
                let reward = -(action[0] - target).powi(2);
                let value = agent.value(&state);
                buffer.push(&state, &action, log_prob, reward, value, true);
            }
            agent.update(&mut buffer);
        }
        agent.act_deterministic(&[1.0])[0]
    }

    #[test]
    fn ppo_solves_continuous_bandit() {
        let a = train_bandit(0.7, 120, 3);
        assert!((a - 0.7).abs() < 0.2, "bandit converged to {a}");
    }

    #[test]
    fn ppo_tracks_negative_targets() {
        let a = train_bandit(-0.5, 120, 4);
        assert!((a + 0.5).abs() < 0.25, "bandit converged to {a}");
    }

    #[test]
    fn critic_learns_state_values() {
        // Two states with deterministic rewards 1 and −1; γ irrelevant for
        // one-step episodes.
        let mut agent = PpoAgent::new(1, 1, &[16], PpoConfig::default(), 5);
        for _ in 0..120 {
            let mut buffer = RolloutBuffer::new();
            for i in 0..16 {
                let s = [if i % 2 == 0 { 1.0 } else { -1.0 }];
                let (a, lp) = agent.act(&s);
                let r = s[0];
                let v = agent.value(&s);
                buffer.push(&s, &a, lp, r, v, true);
            }
            agent.update(&mut buffer);
        }
        let v_pos = agent.value(&[1.0]);
        let v_neg = agent.value(&[-1.0]);
        assert!(
            v_pos > 0.5 && v_neg < -0.5,
            "critic: V(+)={v_pos}, V(−)={v_neg}"
        );
    }

    #[test]
    fn exploration_decays_with_floor() {
        let cfg = PpoConfig {
            std_init: 0.4,
            std_decay: 0.5,
            std_min: 0.1,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new(1, 1, &[4], cfg, 0);
        for _ in 0..10 {
            let mut buffer = RolloutBuffer::new();
            let (a, lp) = agent.act(&[0.0]);
            let v = agent.value(&[0.0]);
            buffer.push(&[0.0], &a, lp, 0.0, v, true);
            agent.update(&mut buffer);
        }
        assert!((agent.exploration_std() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_decay_applies() {
        let mut agent = PpoAgent::new(1, 1, &[4], PpoConfig::paper(), 0);
        agent.decay_learning_rate(0.95);
        // Can't read the optimizer directly, but a second decay must not
        // panic and updates must still run.
        agent.decay_learning_rate(0.95);
        let mut buffer = RolloutBuffer::new();
        let (a, lp) = agent.act(&[0.0]);
        let v = agent.value(&[0.0]);
        buffer.push(&[0.0], &a, lp, 1.0, v, true);
        let (al, cl) = agent.update(&mut buffer);
        assert!(al.is_finite() && cl.is_finite());
    }

    #[test]
    fn update_clears_buffer() {
        let mut agent = PpoAgent::new(2, 1, &[4], PpoConfig::default(), 9);
        let mut buffer = RolloutBuffer::new();
        let s = [0.0, 0.0];
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, 0.5, v, true);
        agent.update(&mut buffer);
        assert!(buffer.is_empty());
        assert_eq!(agent.updates(), 1);
    }

    #[test]
    fn deterministic_action_is_repeatable() {
        let mut agent = PpoAgent::new(2, 2, &[8], PpoConfig::default(), 11);
        let s = [0.3, -0.3];
        assert_eq!(agent.act_deterministic(&s), agent.act_deterministic(&s));
    }
}
