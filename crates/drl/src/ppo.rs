//! Proximal Policy Optimization with the clipped surrogate objective.

use crate::buffer::RolloutBuffer;
use crate::policy::{state_tensor, states_tensor, GaussianPolicy};
use chiron_nn::models::mlp;
use chiron_nn::{
    clip_grad_norm, forward_batched, Adam, AdamState, Checkpoint, CheckpointError, MseLoss,
    Optimizer, Sequential,
};
use chiron_tensor::{pool, scratch, RngState, Tensor, TensorRng};
use serde::{Deserialize, Serialize};

/// Rows per block for the full-batch actor/critic passes in
/// [`PpoAgent::update`]. Typical rollout buffers (tens of transitions) fit
/// a single block — byte-identical to the unbatched pass — while oversized
/// buffers split deterministically across the worker pool.
const PPO_BLOCK_ROWS: usize = 256;

/// Transitions per block for the parallel clipped-surrogate loop. Each
/// transition's gradient row is written independently (gradients never sum
/// across transitions), so any partition yields bitwise-identical grads;
/// the per-block loss partials reduce in block-index order.
const SURROGATE_BLOCK: usize = 8;

/// PPO hyperparameters.
///
/// Defaults follow the paper's Section VI-A where specified (`γ = 0.95`,
/// learning-rate decay ×0.95 every 20 episodes) and standard PPO practice
/// elsewhere (clip 0.2, a handful of update epochs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Discount factor `γ` (paper: 0.95).
    pub gamma: f64,
    /// GAE λ (0 reproduces Algorithm 1's one-step TD advantages).
    pub gae_lambda: f64,
    /// Clipping radius ε of the surrogate ratio.
    pub clip: f64,
    /// Update epochs `M` per consumed buffer.
    pub epochs: usize,
    /// Actor learning rate.
    pub actor_lr: f32,
    /// Critic learning rate.
    pub critic_lr: f32,
    /// Initial exploration std.
    pub std_init: f64,
    /// Multiplicative std decay applied per update.
    pub std_decay: f64,
    /// Exploration floor.
    pub std_min: f64,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Normalize advantages per update (recommended).
    pub normalize_advantages: bool,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            gamma: 0.95,
            gae_lambda: 0.95,
            clip: 0.2,
            epochs: 10,
            actor_lr: 3e-4,
            critic_lr: 1e-3,
            std_init: 0.5,
            std_decay: 0.99,
            std_min: 0.05,
            max_grad_norm: 0.5,
            normalize_advantages: true,
        }
    }
}

impl PpoConfig {
    /// The paper's hyperparameters: `lr_a = lr_c = 3e-5`, `γ = 0.95`.
    /// (The paper decays the learning rate by 5 % every 20 episodes — the
    /// mechanism layer drives that via [`PpoAgent::decay_learning_rate`].)
    pub fn paper() -> Self {
        Self {
            actor_lr: 3e-5,
            critic_lr: 3e-5,
            ..Self::default()
        }
    }
}

/// An actor–critic PPO agent over continuous actions.
///
/// One `PpoAgent` instance is one of the paper's learners: it exposes
/// `act`/`value` for rollouts and `update` for the M-epoch clipped-PPO
/// improvement step that Algorithm 1 triggers at the end of each episode.
///
/// # Examples
///
/// ```
/// use chiron_drl::{PpoAgent, PpoConfig};
///
/// let mut agent = PpoAgent::new(4, 2, &[32, 32], PpoConfig::default(), 1);
/// let (action, log_prob) = agent.act(&[0.0, 0.1, 0.2, 0.3]);
/// assert_eq!(action.len(), 2);
/// assert!(log_prob.is_finite());
/// ```
pub struct PpoAgent {
    actor: GaussianPolicy,
    critic: Sequential,
    actor_opt: Adam,
    critic_opt: Adam,
    config: PpoConfig,
    state_dim: usize,
    updates: usize,
    skipped_updates: usize,
}

impl PpoAgent {
    /// Builds actor and critic MLPs with the given hidden sizes.
    ///
    /// # Panics
    ///
    /// Panics if dims are zero.
    pub fn new(
        state_dim: usize,
        action_dim: usize,
        hidden: &[usize],
        config: PpoConfig,
        seed: u64,
    ) -> Self {
        let actor = GaussianPolicy::new(state_dim, action_dim, hidden, config.std_init, seed);
        let mut dims = vec![state_dim];
        dims.extend_from_slice(hidden);
        dims.push(1);
        let critic = mlp(&dims, &mut TensorRng::seed_from(seed ^ 0xC217));
        Self {
            actor,
            critic,
            actor_opt: Adam::new(config.actor_lr),
            critic_opt: Adam::new(config.critic_lr),
            config,
            state_dim,
            updates: 0,
            skipped_updates: 0,
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Number of completed updates.
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Number of updates skipped or rolled back because non-finite values
    /// (NaN/inf rewards, exploded losses, poisoned parameters) were
    /// detected. The parameters in effect after a skipped update are
    /// exactly the parameters from before it.
    pub fn skipped_updates(&self) -> usize {
        self.skipped_updates
    }

    /// Current exploration std.
    pub fn exploration_std(&self) -> f64 {
        self.actor.std()
    }

    /// Samples a stochastic action, returning `(action, log_prob)`.
    pub fn act(&mut self, state: &[f64]) -> (Vec<f64>, f64) {
        self.actor.sample(state)
    }

    /// The deterministic (mean) action for evaluation.
    pub fn act_deterministic(&mut self, state: &[f64]) -> Vec<f64> {
        self.actor.mean(state)
    }

    /// The critic's value estimate `V(s)`.
    pub fn value(&mut self, state: &[f64]) -> f64 {
        let x = state_tensor(state, self.state_dim);
        self.critic.forward(&x, false).item() as f64
    }

    /// Multiplies both learning rates by `factor` (the paper decays by 0.95
    /// every 20 episodes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn decay_learning_rate(&mut self, factor: f32) {
        assert!(factor > 0.0, "decay factor must be positive");
        self.actor_opt
            .set_learning_rate(self.actor_opt.learning_rate() * factor);
        self.critic_opt
            .set_learning_rate(self.critic_opt.learning_rate() * factor);
    }

    /// One full PPO improvement: `epochs` passes of clipped-surrogate actor
    /// updates and TD-target critic regression over the whole buffer, then
    /// clears the buffer and decays exploration.
    ///
    /// Returns `(mean_actor_loss, mean_critic_loss)` across epochs.
    ///
    /// ## Non-finite resilience
    ///
    /// A NaN/inf anywhere in the rollout (a diverged reward, an exploded
    /// critic value) would poison every parameter through the surrogate
    /// gradient *and* Adam's moment estimates, from which no later update
    /// recovers. The update therefore validates its inputs up front and its
    /// losses/parameters afterwards; on any non-finite detection it rolls
    /// actor, critic, and both optimizers back to their pre-update state,
    /// increments [`skipped_updates`](Self::skipped_updates), clears the
    /// buffer, and returns `(0.0, 0.0)`. Training continues from the last
    /// good parameters.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn update(&mut self, buffer: &mut RolloutBuffer) -> (f64, f64) {
        assert!(!buffer.is_empty(), "PPO update on an empty buffer");
        let _span = chiron_telemetry::span("ppo_update");
        static PPO_UPDATES: chiron_telemetry::Counter =
            chiron_telemetry::Counter::new("drl.ppo.updates");
        static PPO_ROLLBACKS: chiron_telemetry::Counter =
            chiron_telemetry::Counter::new("drl.ppo.rollbacks");
        let (returns, mut advantages) =
            buffer.compute_returns_and_advantages(self.config.gamma, self.config.gae_lambda);

        let inputs_finite = buffer.transitions().iter().all(|t| {
            t.log_prob.is_finite()
                && t.reward.is_finite()
                && t.value.is_finite()
                && t.state.iter().all(|v| v.is_finite())
                && t.action.iter().all(|v| v.is_finite())
        }) && returns.iter().all(|r| r.is_finite())
            && advantages.iter().all(|a| a.is_finite());
        if !inputs_finite {
            buffer.clear();
            self.skipped_updates += 1;
            PPO_ROLLBACKS.add(1);
            return (0.0, 0.0);
        }

        if self.config.normalize_advantages && advantages.len() > 1 {
            let mean = advantages.iter().sum::<f64>() / advantages.len() as f64;
            let var = advantages
                .iter()
                .map(|a| (a - mean) * (a - mean))
                .sum::<f64>()
                / advantages.len() as f64;
            let std = var.sqrt().max(1e-8);
            for a in &mut advantages {
                *a = (*a - mean) / std;
            }
        }

        let n = buffer.len();
        let state_batch = states_tensor(
            buffer.transitions().iter().map(|t| t.state.as_slice()),
            self.state_dim,
        );
        let action_dim = self.actor.action_dim();
        let mut returns_data = scratch::take_vec_with_capacity(n);
        returns_data.extend(returns.iter().map(|&r| r as f32));
        let returns_t = Tensor::from_vec(returns_data, &[n, 1]);

        // Rollback anchor: flat parameters plus full optimizer clones
        // (restoring parameters alone would leave NaN-poisoned Adam moments
        // behind, which re-poison the very next step).
        let actor_backup = self.actor.net_mut().parameters_flat();
        let critic_backup = self.critic.parameters_flat();
        let actor_opt_backup = self.actor_opt.clone();
        let critic_opt_backup = self.critic_opt.clone();

        let mut actor_loss_acc = 0.0f64;
        let mut critic_loss_acc = 0.0f64;
        let mut poisoned = false;

        let clip = self.config.clip;
        for _ in 0..self.config.epochs {
            // --- Actor: clipped surrogate ---
            let actor_pass = self.actor.mean_batch_pass(&state_batch, PPO_BLOCK_ROWS);
            let var = self.actor.std() * self.actor.std();
            let mu = actor_pass.output().as_slice();
            let mut grad = scratch::take_vec(n * action_dim);
            // Each transition's gradient row is independent, so the loop
            // fans out over fixed transition blocks; per-block loss
            // partials reduce in block order, keeping the reported loss
            // identical for every thread count. The serial path iterates
            // the same blocks inline without the partials vector, so a
            // single-thread update stays allocation-free.
            let transitions = buffer.transitions();
            let surrogate_block = |block: usize, rows: &mut [f32]| {
                let t0 = block * SURROGATE_BLOCK;
                let mut loss = 0.0f64;
                for (r, g_row) in rows.chunks_mut(action_dim).enumerate() {
                    let i = t0 + r;
                    let tr = &transitions[i];
                    // log π_new(a|s) under the current mean.
                    let mut logp =
                        -0.5 * (action_dim as f64) * (2.0 * std::f64::consts::PI * var).ln();
                    for j in 0..action_dim {
                        let m = mu[i * action_dim + j] as f64;
                        let a = tr.action[j];
                        logp -= (a - m) * (a - m) / (2.0 * var);
                    }
                    let ratio = (logp - tr.log_prob).exp();
                    let adv = advantages[i];
                    let clipped = ratio.clamp(1.0 - clip, 1.0 + clip);
                    let surr = (ratio * adv).min(clipped * adv);
                    loss -= surr;
                    // Gradient flows only through the unclipped branch
                    // when it is the active minimum.
                    let ratio_active = (ratio * adv) <= (clipped * adv) + 1e-12;
                    if ratio_active {
                        // d(−ratio·adv)/dμ_j = −adv·ratio·d logp/dμ_j
                        //                    = −adv·ratio·(a_j − μ_j)/σ².
                        for (j, g) in g_row.iter_mut().enumerate() {
                            let m = mu[i * action_dim + j] as f64;
                            let a = tr.action[j];
                            let d = -adv * ratio * (a - m) / var;
                            *g = (d / n as f64) as f32;
                        }
                    }
                }
                loss
            };
            let loss: f64 = if pool::threads() > 1 {
                pool::parallel_chunks_map(&mut grad, SURROGATE_BLOCK * action_dim, |b, rows| {
                    surrogate_block(b, rows)
                })
                .iter()
                .sum()
            } else {
                grad.chunks_mut(SURROGATE_BLOCK * action_dim)
                    .enumerate()
                    .map(|(block, rows)| surrogate_block(block, rows))
                    .sum()
            };
            if !loss.is_finite() {
                poisoned = true;
                break;
            }
            actor_loss_acc += loss / n as f64;
            let grad_t = Tensor::from_vec(grad, &[n, action_dim]);
            actor_pass.backward_train(self.actor.net_mut(), &grad_t);
            clip_grad_norm(self.actor.net_mut(), self.config.max_grad_norm);
            self.actor_opt.step(self.actor.net_mut());

            // --- Critic: regression onto bootstrapped returns ---
            let critic_pass = forward_batched(&mut self.critic, &state_batch, true, PPO_BLOCK_ROWS);
            let (closs, cgrad) = MseLoss.forward(critic_pass.output(), &returns_t);
            if !closs.is_finite() {
                poisoned = true;
                break;
            }
            critic_loss_acc += closs as f64;
            critic_pass.backward_train(&mut self.critic, &cgrad);
            clip_grad_norm(&mut self.critic, self.config.max_grad_norm);
            self.critic_opt.step(&mut self.critic);
        }

        // A loss can stay finite while a gradient overflowed into the
        // parameters, so check the networks themselves last.
        if !poisoned {
            poisoned = !self
                .actor
                .net_mut()
                .parameters_flat()
                .iter()
                .all(|p| p.is_finite())
                || !self.critic.parameters_flat().iter().all(|p| p.is_finite());
        }
        if poisoned {
            self.actor.net_mut().set_parameters_flat(&actor_backup);
            self.critic.set_parameters_flat(&critic_backup);
            self.actor_opt = actor_opt_backup;
            self.critic_opt = critic_opt_backup;
            buffer.clear();
            self.skipped_updates += 1;
            PPO_ROLLBACKS.add(1);
            return (0.0, 0.0);
        }

        let e = self.config.epochs as f64;
        let mean_actor_loss = actor_loss_acc / e;
        let mean_critic_loss = critic_loss_acc / e;

        // Telemetry: a strictly read-only diagnostic pass over the final
        // policy (clip fraction, approximate KL, Gaussian entropy). Runs
        // only while the layer is enabled; its forward pass reuses the
        // deterministic batched path and feeds nothing back, so enabling it
        // cannot perturb training.
        if chiron_telemetry::enabled() {
            let pass = self.actor.mean_batch_pass(&state_batch, PPO_BLOCK_ROWS);
            let mu = pass.output().as_slice();
            let var = self.actor.std() * self.actor.std();
            let mut clipped = 0usize;
            let mut kl_sum = 0.0f64;
            for (i, tr) in buffer.transitions().iter().enumerate() {
                let mut logp = -0.5 * (action_dim as f64) * (2.0 * std::f64::consts::PI * var).ln();
                for j in 0..action_dim {
                    let m = mu[i * action_dim + j] as f64;
                    let a = tr.action[j];
                    logp -= (a - m) * (a - m) / (2.0 * var);
                }
                let ratio = (logp - tr.log_prob).exp();
                if (ratio - 1.0).abs() > clip {
                    clipped += 1;
                }
                kl_sum += tr.log_prob - logp;
            }
            let clip_fraction = clipped as f64 / n as f64;
            let approx_kl = kl_sum / n as f64;
            let entropy =
                0.5 * (action_dim as f64) * (1.0 + (2.0 * std::f64::consts::PI * var).ln());
            chiron_telemetry::histogram_record("drl.ppo.clip_fraction", clip_fraction);
            chiron_telemetry::histogram_record("drl.ppo.approx_kl", approx_kl);
            chiron_telemetry::histogram_record("drl.ppo.entropy", entropy);
            chiron_telemetry::histogram_record("drl.ppo.actor_loss", mean_actor_loss);
            chiron_telemetry::histogram_record("drl.ppo.critic_loss", mean_critic_loss);
            chiron_telemetry::event(
                "ppo_update",
                self.updates + 1, // sequence index of this update
                &[
                    ("transitions", n as f64),
                    ("actor_loss", mean_actor_loss),
                    ("critic_loss", mean_critic_loss),
                    ("clip_fraction", clip_fraction),
                    ("approx_kl", approx_kl),
                    ("entropy", entropy),
                ],
            );
        }

        buffer.clear();
        self.updates += 1;
        PPO_UPDATES.add(1);
        let new_std = (self.actor.std() * self.config.std_decay).max(self.config.std_min);
        self.actor.set_std(new_std);

        (mean_actor_loss, mean_critic_loss)
    }
}

/// A serializable snapshot of a trained [`PpoAgent`]: actor and critic
/// parameters plus the exploration/update counters. Optimizer moments are
/// not stored — a restored agent is meant for evaluation or fine-tuning
/// with fresh optimizer state.
///
/// # Examples
///
/// ```
/// use chiron_drl::{AgentSnapshot, PpoAgent, PpoConfig};
///
/// let mut agent = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 0);
/// let snap = agent.snapshot("demo");
/// let mut twin = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 99);
/// snap.restore(&mut twin).expect("same architecture");
/// assert_eq!(
///     agent.act_deterministic(&[0.1, 0.2]),
///     twin.act_deterministic(&[0.1, 0.2]),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentSnapshot {
    /// Free-form label.
    pub label: String,
    /// Actor network parameters.
    pub actor: Checkpoint,
    /// Critic network parameters.
    pub critic: Checkpoint,
    /// Exploration std at capture time.
    pub exploration_std: f64,
    /// Update count at capture time.
    pub updates: usize,
}

/// A snapshot JSON document that failed to parse.
///
/// Wraps the underlying [`serde_json::Error`], exposed through
/// [`std::error::Error::source`] so callers can chain it.
#[derive(Debug)]
pub struct SnapshotError {
    source: serde_json::Error,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed snapshot JSON: {}", self.source)
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.source)
    }
}

impl From<serde_json::Error> for SnapshotError {
    fn from(source: serde_json::Error) -> Self {
        Self { source }
    }
}

impl AgentSnapshot {
    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization is infallible")
    }

    /// Parses a JSON snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError`] (with the parse error as its
    /// [`source`](std::error::Error::source)) on malformed input.
    pub fn from_json(json: &str) -> Result<Self, SnapshotError> {
        serde_json::from_str(json).map_err(SnapshotError::from)
    }

    /// Restores the snapshot into `agent`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::ArchitectureMismatch`] if either network
    /// differs from the snapshot's.
    pub fn restore(&self, agent: &mut PpoAgent) -> Result<(), CheckpointError> {
        self.actor.restore(agent.actor.net_mut())?;
        self.critic.restore(&mut agent.critic)?;
        agent.actor.set_std(self.exploration_std.max(1e-6));
        agent.updates = self.updates;
        Ok(())
    }
}

impl PpoAgent {
    /// Captures a serializable snapshot of the agent.
    pub fn snapshot(&mut self, label: &str) -> AgentSnapshot {
        AgentSnapshot {
            label: label.to_owned(),
            actor: Checkpoint::capture(self.actor.net_mut(), &format!("{label}-actor")),
            critic: Checkpoint::capture(&self.critic, &format!("{label}-critic")),
            exploration_std: self.actor.std(),
            updates: self.updates,
        }
    }

    /// Captures the agent's *complete* training state: parameters, both
    /// Adam optimizers' moments, the exploration RNG, and the counters.
    /// Unlike [`snapshot`](Self::snapshot), restoring this resumes training
    /// bitwise-identically to never having stopped.
    pub fn full_state(&mut self, label: &str) -> AgentFullState {
        AgentFullState {
            snapshot: self.snapshot(label),
            actor_opt: self.actor_opt.capture_state(),
            critic_opt: self.critic_opt.capture_state(),
            policy_rng: self.actor.rng_state(),
            skipped_updates: self.skipped_updates,
        }
    }

    /// Restores a [`full_state`](Self::full_state) capture into this agent.
    ///
    /// The agent must have been built with the same architecture (state and
    /// action dims, hidden sizes) as the captured one.
    ///
    /// # Errors
    ///
    /// Returns a typed [`AgentStateError`] on any mismatch. Validation runs
    /// before any mutation, so on error the agent is unchanged.
    pub fn restore_full(&mut self, state: &AgentFullState) -> Result<(), AgentStateError> {
        // Validate everything up front so a failure leaves no half-restore.
        if self.actor.net_mut().summary() != state.snapshot.actor.architecture
            || self.critic.summary() != state.snapshot.critic.architecture
        {
            return Err(AgentStateError::Network(
                CheckpointError::ArchitectureMismatch {
                    expected: format!(
                        "{} / {}",
                        state.snapshot.actor.architecture, state.snapshot.critic.architecture
                    ),
                    found: format!(
                        "{} / {}",
                        self.actor.net_mut().summary(),
                        self.critic.summary()
                    ),
                },
            ));
        }
        let rng_ok = TensorRng::from_state(&state.policy_rng).is_some();
        if !rng_ok {
            return Err(AgentStateError::MalformedRng);
        }
        state
            .snapshot
            .restore(self)
            .map_err(AgentStateError::Network)?;
        self.actor_opt
            .restore_state(&state.actor_opt)
            .map_err(|_| AgentStateError::Optimizer)?;
        self.critic_opt
            .restore_state(&state.critic_opt)
            .map_err(|_| AgentStateError::Optimizer)?;
        self.actor.restore_rng_state(&state.policy_rng);
        self.skipped_updates = state.skipped_updates;
        Ok(())
    }
}

/// Everything needed to resume a [`PpoAgent`] mid-training with no drift:
/// the parameter snapshot plus Adam moments, the exploration RNG, and the
/// skip counter. Produced by [`PpoAgent::full_state`], consumed by
/// [`PpoAgent::restore_full`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentFullState {
    /// Network parameters, exploration std, update count.
    pub snapshot: AgentSnapshot,
    /// Actor optimizer moments.
    pub actor_opt: AdamState,
    /// Critic optimizer moments.
    pub critic_opt: AdamState,
    /// Exploration RNG state.
    pub policy_rng: RngState,
    /// Rolled-back update count at capture time.
    pub skipped_updates: usize,
}

/// Why an [`AgentFullState`] could not be restored.
#[derive(Debug, Clone, PartialEq)]
pub enum AgentStateError {
    /// A network checkpoint did not match the target architecture.
    Network(CheckpointError),
    /// Optimizer moments were inconsistent with the networks.
    Optimizer,
    /// The stored RNG state words are malformed.
    MalformedRng,
}

impl std::fmt::Display for AgentStateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentStateError::Network(e) => write!(f, "network state mismatch: {e}"),
            AgentStateError::Optimizer => write!(f, "optimizer state inconsistent with networks"),
            AgentStateError::MalformedRng => write!(f, "malformed exploration RNG state"),
        }
    }
}

impl std::error::Error for AgentStateError {}

impl std::fmt::Debug for PpoAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PpoAgent(state {}, action {}, {} updates, std {:.3})",
            self.state_dim,
            self.actor.action_dim(),
            self.updates,
            self.actor.std()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A one-step continuous bandit: reward = −(a − target)².
    fn train_bandit(target: f64, iterations: usize, seed: u64) -> f64 {
        let mut agent = PpoAgent::new(
            1,
            1,
            &[16],
            PpoConfig {
                actor_lr: 3e-3,
                critic_lr: 3e-3,
                std_init: 0.6,
                std_decay: 0.97,
                ..PpoConfig::default()
            },
            seed,
        );
        for _ in 0..iterations {
            let mut buffer = RolloutBuffer::new();
            for _ in 0..32 {
                let state = [1.0];
                let (action, log_prob) = agent.act(&state);
                let reward = -(action[0] - target).powi(2);
                let value = agent.value(&state);
                buffer.push(&state, &action, log_prob, reward, value, true);
            }
            agent.update(&mut buffer);
        }
        agent.act_deterministic(&[1.0])[0]
    }

    #[test]
    fn ppo_solves_continuous_bandit() {
        let a = train_bandit(0.7, 120, 3);
        assert!((a - 0.7).abs() < 0.2, "bandit converged to {a}");
    }

    #[test]
    fn ppo_tracks_negative_targets() {
        let a = train_bandit(-0.5, 120, 4);
        assert!((a + 0.5).abs() < 0.25, "bandit converged to {a}");
    }

    #[test]
    fn critic_learns_state_values() {
        // Two states with deterministic rewards 1 and −1; γ irrelevant for
        // one-step episodes.
        let mut agent = PpoAgent::new(1, 1, &[16], PpoConfig::default(), 5);
        for _ in 0..120 {
            let mut buffer = RolloutBuffer::new();
            for i in 0..16 {
                let s = [if i % 2 == 0 { 1.0 } else { -1.0 }];
                let (a, lp) = agent.act(&s);
                let r = s[0];
                let v = agent.value(&s);
                buffer.push(&s, &a, lp, r, v, true);
            }
            agent.update(&mut buffer);
        }
        let v_pos = agent.value(&[1.0]);
        let v_neg = agent.value(&[-1.0]);
        assert!(
            v_pos > 0.5 && v_neg < -0.5,
            "critic: V(+)={v_pos}, V(−)={v_neg}"
        );
    }

    #[test]
    fn exploration_decays_with_floor() {
        let cfg = PpoConfig {
            std_init: 0.4,
            std_decay: 0.5,
            std_min: 0.1,
            ..PpoConfig::default()
        };
        let mut agent = PpoAgent::new(1, 1, &[4], cfg, 0);
        for _ in 0..10 {
            let mut buffer = RolloutBuffer::new();
            let (a, lp) = agent.act(&[0.0]);
            let v = agent.value(&[0.0]);
            buffer.push(&[0.0], &a, lp, 0.0, v, true);
            agent.update(&mut buffer);
        }
        assert!((agent.exploration_std() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn learning_rate_decay_applies() {
        let mut agent = PpoAgent::new(1, 1, &[4], PpoConfig::paper(), 0);
        agent.decay_learning_rate(0.95);
        // Can't read the optimizer directly, but a second decay must not
        // panic and updates must still run.
        agent.decay_learning_rate(0.95);
        let mut buffer = RolloutBuffer::new();
        let (a, lp) = agent.act(&[0.0]);
        let v = agent.value(&[0.0]);
        buffer.push(&[0.0], &a, lp, 1.0, v, true);
        let (al, cl) = agent.update(&mut buffer);
        assert!(al.is_finite() && cl.is_finite());
    }

    #[test]
    fn update_clears_buffer() {
        let mut agent = PpoAgent::new(2, 1, &[4], PpoConfig::default(), 9);
        let mut buffer = RolloutBuffer::new();
        let s = [0.0, 0.0];
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, 0.5, v, true);
        agent.update(&mut buffer);
        assert!(buffer.is_empty());
        assert_eq!(agent.updates(), 1);
    }

    #[test]
    fn deterministic_action_is_repeatable() {
        let mut agent = PpoAgent::new(2, 2, &[8], PpoConfig::default(), 11);
        let s = [0.3, -0.3];
        assert_eq!(agent.act_deterministic(&s), agent.act_deterministic(&s));
    }

    #[test]
    fn nan_reward_skips_update_and_preserves_params() {
        let mut agent = PpoAgent::new(1, 1, &[8], PpoConfig::default(), 21);
        let before = agent.snapshot("before");
        let mut buffer = RolloutBuffer::new();
        let s = [0.5];
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, f64::NAN, v, true);
        let (al, cl) = agent.update(&mut buffer);
        assert_eq!((al, cl), (0.0, 0.0));
        assert!(buffer.is_empty(), "poisoned buffer must still be consumed");
        assert_eq!(agent.updates(), 0);
        assert_eq!(agent.skipped_updates(), 1);
        assert_eq!(agent.snapshot("before").actor, before.actor);
        assert_eq!(agent.snapshot("before").critic, before.critic);
    }

    #[test]
    fn exploded_loss_rolls_back_params_and_optimizer() {
        let mut agent = PpoAgent::new(1, 1, &[8], PpoConfig::default(), 22);
        // Warm the optimizers so the rollback has real moments to restore.
        let mut buffer = RolloutBuffer::new();
        let s = [0.5];
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, 1.0, v, true);
        agent.update(&mut buffer);

        let before = agent.full_state("before");
        // Finite in f64 but the critic's f32 MSE overflows to inf:
        // (1e30)² = 1e60 ≫ f32::MAX. The actor epoch runs first, so this
        // exercises the mid-update rollback path, not the input gate.
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, 1e30, v, true);
        let (al, cl) = agent.update(&mut buffer);
        assert_eq!((al, cl), (0.0, 0.0));
        assert_eq!(agent.updates(), 1);
        assert_eq!(agent.skipped_updates(), 1);
        let after = agent.full_state("before");
        assert_eq!(after.snapshot.actor, before.snapshot.actor);
        assert_eq!(after.snapshot.critic, before.snapshot.critic);
        assert_eq!(after.actor_opt, before.actor_opt);
        assert_eq!(after.critic_opt, before.critic_opt);

        // And training continues: a clean buffer still updates.
        let (a, lp) = agent.act(&s);
        let v = agent.value(&s);
        buffer.push(&s, &a, lp, 0.5, v, true);
        agent.update(&mut buffer);
        assert_eq!(agent.updates(), 2);
    }

    #[test]
    fn full_state_resumes_training_bitwise() {
        let make = |seed| PpoAgent::new(2, 1, &[8], PpoConfig::default(), seed);
        let mut agent = make(33);
        let fixed_states = [[0.1, -0.2], [0.3, 0.4], [-0.5, 0.6], [0.7, -0.8]];
        let run_episode = |agent: &mut PpoAgent| {
            let mut buffer = RolloutBuffer::new();
            for s in &fixed_states {
                let (a, lp) = agent.act(s);
                let r = -(a[0] - 0.3).powi(2);
                let v = agent.value(s);
                buffer.push(s, &a, lp, r, v, true);
            }
            agent.update(&mut buffer);
        };
        for _ in 0..3 {
            run_episode(&mut agent);
        }
        let state = agent.full_state("mid-run");

        // Original continues; a differently-seeded twin restores and must
        // produce an identical tail (params, optimizer moments, and RNG all
        // travel in the state).
        let mut twin = make(999);
        twin.restore_full(&state).expect("same architecture");
        for _ in 0..3 {
            run_episode(&mut agent);
            run_episode(&mut twin);
        }
        assert_eq!(
            agent.full_state("end").snapshot,
            twin.full_state("end").snapshot
        );
        assert_eq!(agent.act(&[0.0, 0.0]), twin.act(&[0.0, 0.0]));
    }

    #[test]
    fn restore_full_rejects_mismatched_architecture() {
        let mut agent = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 1);
        let state = agent.full_state("src");
        let mut other = PpoAgent::new(2, 1, &[9], PpoConfig::default(), 1);
        let before = other.full_state("pre");
        let err = other.restore_full(&state).expect_err("must reject");
        assert!(matches!(err, AgentStateError::Network(_)));
        assert_eq!(
            other.full_state("pre"),
            before,
            "failed restore must not mutate"
        );
    }

    #[test]
    fn restore_full_rejects_malformed_rng() {
        let mut agent = PpoAgent::new(2, 1, &[8], PpoConfig::default(), 1);
        let mut state = agent.full_state("src");
        state.policy_rng.state.pop();
        let err = agent.restore_full(&state).expect_err("must reject");
        assert_eq!(err, AgentStateError::MalformedRng);
    }
}
