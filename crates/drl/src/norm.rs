//! Online observation normalization (Welford's algorithm).

/// A running per-dimension mean/variance estimator for observation
/// normalization.
///
/// PPO on hand-crafted state vectors is sensitive to feature scales; the
/// mechanism layer normalizes its features analytically (dividing by known
/// caps), but user-defined environments plugged into [`crate::PpoAgent`]
/// often cannot. `RunningNorm` tracks mean and variance online with
/// Welford's numerically stable update and maps observations to
/// approximately zero mean and unit variance.
///
/// # Examples
///
/// ```
/// use chiron_drl::RunningNorm;
///
/// let mut norm = RunningNorm::new(2);
/// for i in 0..100 {
///     norm.update(&[i as f64, 1000.0 + i as f64]);
/// }
/// let z = norm.normalize(&[49.5, 1049.5]); // the running means
/// assert!(z.iter().all(|v| v.abs() < 1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunningNorm {
    count: u64,
    mean: Vec<f64>,
    m2: Vec<f64>,
    clip: f64,
}

impl RunningNorm {
    /// Creates an estimator for `dim`-dimensional observations with the
    /// standard ±10 output clip.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize) -> Self {
        Self::with_clip(dim, 10.0)
    }

    /// Creates an estimator with an explicit output clip.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `clip <= 0`.
    pub fn with_clip(dim: usize, clip: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(clip > 0.0, "clip must be positive");
        Self {
            count: 0,
            mean: vec![0.0; dim],
            m2: vec![0.0; dim],
            clip,
        }
    }

    /// Observation dimensionality.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Observations ingested so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Ingests one observation (Welford update).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn update(&mut self, x: &[f64]) {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        self.count += 1;
        let n = self.count as f64;
        for ((m, m2), &xi) in self.mean.iter_mut().zip(&mut self.m2).zip(x) {
            let delta = xi - *m;
            *m += delta / n;
            *m2 += delta * (xi - *m);
        }
    }

    /// Current per-dimension variance estimates (population; 0 before two
    /// observations).
    pub fn variance(&self) -> Vec<f64> {
        if self.count < 2 {
            return vec![0.0; self.mean.len()];
        }
        self.m2.iter().map(|&m2| m2 / self.count as f64).collect()
    }

    /// Normalizes `x` to `(x − mean)/std`, clipped; identity until two
    /// observations have been seen.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn normalize(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.mean.len(), "dimension mismatch");
        if self.count < 2 {
            return x.to_vec();
        }
        let var = self.variance();
        x.iter()
            .zip(&self.mean)
            .zip(&var)
            .map(|((&xi, &m), &v)| ((xi - m) / v.sqrt().max(1e-8)).clamp(-self.clip, self.clip))
            .collect()
    }

    /// Convenience: update then normalize the same observation.
    pub fn update_and_normalize(&mut self, x: &[f64]) -> Vec<f64> {
        self.update(x);
        self.normalize(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass_statistics() {
        let xs: Vec<f64> = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut norm = RunningNorm::new(1);
        for &x in &xs {
            norm.update(&[x]);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((norm.variance()[0] - var).abs() < 1e-12);
        let z = norm.normalize(&[mean]);
        assert!(z[0].abs() < 1e-12);
        let z = norm.normalize(&[mean + var.sqrt()]);
        assert!((z[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn identity_before_enough_data() {
        let mut norm = RunningNorm::new(2);
        assert_eq!(norm.normalize(&[3.0, -1.0]), vec![3.0, -1.0]);
        norm.update(&[1.0, 1.0]);
        assert_eq!(norm.normalize(&[3.0, -1.0]), vec![3.0, -1.0]);
    }

    #[test]
    fn dimensions_normalize_independently() {
        let mut norm = RunningNorm::new(2);
        for i in 0..1000 {
            norm.update(&[i as f64 * 0.001, i as f64 * 1000.0]);
        }
        let z = norm.normalize(&[1.0, 1_000_000.0]);
        // Both dimensions land on the same normalized coordinate.
        assert!((z[0] - z[1]).abs() < 1e-6, "{z:?}");
    }

    #[test]
    fn output_is_clipped() {
        let mut norm = RunningNorm::with_clip(1, 3.0);
        for x in [0.0, 1.0, 0.5, 0.7] {
            norm.update(&[x]);
        }
        let z = norm.normalize(&[1e9]);
        assert_eq!(z[0], 3.0);
    }

    #[test]
    fn constant_input_does_not_divide_by_zero() {
        let mut norm = RunningNorm::new(1);
        for _ in 0..10 {
            norm.update(&[5.0]);
        }
        let z = norm.normalize(&[6.0]);
        assert!(z[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_checked() {
        let mut norm = RunningNorm::new(2);
        norm.update(&[1.0]);
    }
}
