//! Experience storage and advantage estimation.

use serde::{Deserialize, Serialize};

/// One stored interaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// Observed state.
    pub state: Vec<f64>,
    /// Raw (pre-squash) action taken.
    pub action: Vec<f64>,
    /// `log π_old(a|s)` at collection time.
    pub log_prob: f64,
    /// Reward received after the action.
    pub reward: f64,
    /// Critic value `V_old(s)` at collection time.
    pub value: f64,
    /// Whether the episode ended after this step.
    pub done: bool,
}

/// An on-policy rollout buffer, as Algorithm 1 uses: transitions accumulate
/// over an episode and are consumed by one multi-epoch PPO update, then
/// cleared.
///
/// # Examples
///
/// ```
/// use chiron_drl::RolloutBuffer;
///
/// let mut buf = RolloutBuffer::new();
/// buf.push(&[0.0], &[1.0], -0.5, 1.0, 0.3, false);
/// buf.push(&[1.0], &[0.5], -0.4, 0.0, 0.1, true);
/// let (returns, advantages) = buf.compute_returns_and_advantages(0.95, 0.95);
/// assert_eq!(returns.len(), 2);
/// assert_eq!(advantages.len(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct RolloutBuffer {
    transitions: Vec<Transition>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition.
    pub fn push(
        &mut self,
        state: &[f64],
        action: &[f64],
        log_prob: f64,
        reward: f64,
        value: f64,
        done: bool,
    ) {
        self.transitions.push(Transition {
            state: state.to_vec(),
            action: action.to_vec(),
            log_prob,
            reward,
            value,
            done,
        });
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// `true` if nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// The stored transitions.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Empties the buffer (after a PPO update consumes it).
    pub fn clear(&mut self) {
        self.transitions.clear();
    }

    /// Marks the most recent transition as terminal.
    ///
    /// Algorithm 1 discovers the episode end one step late: the round that
    /// overdraws the budget is discarded, so the *previous* stored
    /// transition retroactively becomes the episode's last.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty.
    pub fn mark_last_done(&mut self) {
        self.transitions
            .last_mut()
            .expect("mark_last_done on empty buffer")
            .done = true;
    }

    /// Computes bootstrapped returns and GAE(λ) advantages.
    ///
    /// With `lambda = 0` this reduces exactly to the one-step TD targets of
    /// Algorithm 1: advantage `δ_t = r_t + γ·V(s_{t+1}) − V(s_t)` and
    /// critic target `r_t + γ·V(s_{t+1})`. Episode boundaries (`done`)
    /// zero the bootstrap.
    ///
    /// # Panics
    ///
    /// Panics if the buffer is empty or `gamma`/`lambda` are outside
    /// `[0, 1]`.
    pub fn compute_returns_and_advantages(&self, gamma: f64, lambda: f64) -> (Vec<f64>, Vec<f64>) {
        assert!(!self.transitions.is_empty(), "empty rollout buffer");
        assert!((0.0..=1.0).contains(&gamma), "gamma must be in [0,1]");
        assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0,1]");
        let n = self.transitions.len();
        let mut advantages = vec![0.0f64; n];
        let mut gae = 0.0f64;
        for t in (0..n).rev() {
            let tr = &self.transitions[t];
            let next_value = if tr.done || t + 1 == n {
                // The final stored step of a rollout bootstraps to zero —
                // episodes in this codebase always end inside the buffer.
                0.0
            } else {
                self.transitions[t + 1].value
            };
            let delta = tr.reward + gamma * next_value - tr.value;
            gae = delta + if tr.done { 0.0 } else { gamma * lambda * gae };
            advantages[t] = gae;
        }
        let returns: Vec<f64> = advantages
            .iter()
            .zip(&self.transitions)
            .map(|(a, tr)| a + tr.value)
            .collect();
        (returns, advantages)
    }

    /// Mean episode reward over the episodes contained in the buffer
    /// (splitting on `done`); useful for convergence plots.
    pub fn mean_episode_reward(&self) -> f64 {
        if self.transitions.is_empty() {
            return 0.0;
        }
        let mut episode_totals = Vec::new();
        let mut acc = 0.0;
        for tr in &self.transitions {
            acc += tr.reward;
            if tr.done {
                episode_totals.push(acc);
                acc = 0.0;
            }
        }
        if episode_totals.is_empty() {
            episode_totals.push(acc);
        }
        episode_totals.iter().sum::<f64>() / episode_totals.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf_from(rewards: &[f64], values: &[f64], dones: &[bool]) -> RolloutBuffer {
        let mut b = RolloutBuffer::new();
        for ((&r, &v), &d) in rewards.iter().zip(values).zip(dones) {
            b.push(&[0.0], &[0.0], 0.0, r, v, d);
        }
        b
    }

    #[test]
    fn td_zero_matches_algorithm_one() {
        // λ=0 ⇒ advantage is exactly the one-step TD error.
        let b = buf_from(&[1.0, 2.0, 3.0], &[0.5, 0.4, 0.3], &[false, false, true]);
        let gamma = 0.9;
        let (_, adv) = b.compute_returns_and_advantages(gamma, 0.0);
        assert!((adv[0] - (1.0 + 0.9 * 0.4 - 0.5)).abs() < 1e-12);
        assert!((adv[1] - (2.0 + 0.9 * 0.3 - 0.4)).abs() < 1e-12);
        assert!((adv[2] - (3.0 + 0.0 - 0.3)).abs() < 1e-12);
    }

    #[test]
    fn returns_equal_advantage_plus_value() {
        let b = buf_from(&[1.0, -1.0], &[0.2, 0.1], &[false, true]);
        let (ret, adv) = b.compute_returns_and_advantages(0.95, 0.9);
        for i in 0..2 {
            assert!((ret[i] - (adv[i] + b.transitions()[i].value)).abs() < 1e-12);
        }
    }

    #[test]
    fn done_blocks_bootstrap_and_gae_flow() {
        // Two one-step episodes: each advantage is just r − V(s).
        let b = buf_from(&[5.0, 7.0], &[1.0, 2.0], &[true, true]);
        let (_, adv) = b.compute_returns_and_advantages(0.99, 0.95);
        assert!((adv[0] - 4.0).abs() < 1e-12);
        assert!((adv[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn gae_lambda_one_is_discounted_monte_carlo() {
        let b = buf_from(&[1.0, 1.0, 1.0], &[0.0, 0.0, 0.0], &[false, false, true]);
        let (ret, _) = b.compute_returns_and_advantages(0.5, 1.0);
        // Monte-Carlo returns: 1 + 0.5 + 0.25, 1 + 0.5, 1.
        assert!((ret[0] - 1.75).abs() < 1e-12);
        assert!((ret[1] - 1.5).abs() < 1e-12);
        assert!((ret[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mean_episode_reward_splits_on_done() {
        let b = buf_from(&[1.0, 2.0, 4.0], &[0.0; 3], &[false, true, true]);
        // Episodes: (1+2)=3 and 4 → mean 3.5.
        assert!((b.mean_episode_reward() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut b = buf_from(&[1.0], &[0.0], &[true]);
        assert_eq!(b.len(), 1);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    #[should_panic(expected = "empty rollout")]
    fn empty_buffer_rejected() {
        let b = RolloutBuffer::new();
        let _ = b.compute_returns_and_advantages(0.9, 0.0);
    }
}
