//! Property-based tests for PPO building blocks.

use crate::{GaussianPolicy, PpoAgent, PpoConfig, RolloutBuffer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// GAE with λ = 0 is exactly the one-step TD error for every transition.
    #[test]
    fn gae_zero_is_td_error(
        rewards in proptest::collection::vec(-5.0f64..5.0, 1..20),
        gamma in 0.0f64..1.0,
    ) {
        let mut buf = RolloutBuffer::new();
        let n = rewards.len();
        for (i, &r) in rewards.iter().enumerate() {
            let v = (i as f64) * 0.1;
            buf.push(&[0.0], &[0.0], 0.0, r, v, i + 1 == n);
        }
        let (_, adv) = buf.compute_returns_and_advantages(gamma, 0.0);
        for (i, tr) in buf.transitions().iter().enumerate() {
            let next_v = if tr.done || i + 1 == n { 0.0 } else { buf.transitions()[i + 1].value };
            let td = tr.reward + gamma * next_v - tr.value;
            prop_assert!((adv[i] - td).abs() < 1e-9);
        }
    }

    /// Log-probabilities integrate sensibly: density is maximal at the mean
    /// and decreases monotonically with distance.
    #[test]
    fn log_prob_monotone_in_distance(
        mean in -3.0f64..3.0,
        d1 in 0.0f64..2.0,
        d2 in 0.0f64..2.0,
        std in 0.05f64..2.0,
    ) {
        let policy = GaussianPolicy::new(1, 1, &[4], std, 0);
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        let lp_near = policy.log_prob(&[mean], &[mean + near]);
        let lp_far = policy.log_prob(&[mean], &[mean + far]);
        prop_assert!(lp_near >= lp_far - 1e-12);
    }

    /// Sampled actions have empirical spread consistent with the configured
    /// exploration std (coarse two-sided bound).
    #[test]
    fn sample_spread_matches_std(seed in 0u64..100, std in 0.1f64..1.0) {
        let mut policy = GaussianPolicy::new(1, 1, &[4], std, seed);
        let s = [0.0];
        let mu = policy.mean(&s)[0];
        let samples: Vec<f64> = (0..400).map(|_| policy.sample(&s).0[0]).collect();
        let emp_var = samples.iter().map(|a| (a - mu) * (a - mu)).sum::<f64>() / 400.0;
        let emp_std = emp_var.sqrt();
        prop_assert!(emp_std > std * 0.7 && emp_std < std * 1.3,
            "empirical std {} vs configured {}", emp_std, std);
    }

    /// A PPO update never produces non-finite losses, whatever the rewards.
    #[test]
    fn update_is_numerically_stable(
        rewards in proptest::collection::vec(-100.0f64..100.0, 2..16),
        seed in 0u64..50,
    ) {
        let mut agent = PpoAgent::new(2, 1, &[8], PpoConfig::default(), seed);
        let mut buf = RolloutBuffer::new();
        let n = rewards.len();
        for (i, &r) in rewards.iter().enumerate() {
            let s = [i as f64 / n as f64, 1.0];
            let (a, lp) = agent.act(&s);
            let v = agent.value(&s);
            buf.push(&s, &a, lp, r, v, i + 1 == n);
        }
        let (al, cl) = agent.update(&mut buf);
        prop_assert!(al.is_finite(), "actor loss {al}");
        prop_assert!(cl.is_finite(), "critic loss {cl}");
        // The agent still acts sensibly afterwards.
        let a = agent.act_deterministic(&[0.0, 1.0]);
        prop_assert!(a[0].is_finite());
    }
}
