//! # chiron-drl
//!
//! The deep-reinforcement-learning substrate of the Chiron (ICDCS 2021)
//! reproduction: Gaussian MLP policies, rollout buffers with TD/GAE
//! advantage estimation, and Proximal Policy Optimization with the clipped
//! surrogate objective — everything Algorithm 1 of the paper needs, built
//! from scratch on `chiron-nn`.
//!
//! The same [`PpoAgent`] type powers all four learners in the
//! reproduction: Chiron's exterior agent, Chiron's inner agent, the flat
//! ablation agent, and the myopic "DRL-based" baseline.
//!
//! ## Example: learning a continuous bandit
//!
//! ```
//! use chiron_drl::{PpoAgent, PpoConfig, RolloutBuffer};
//!
//! let mut agent = PpoAgent::new(1, 1, &[16], PpoConfig::default(), 0);
//! for _ in 0..40 {
//!     let mut buffer = RolloutBuffer::new();
//!     for _ in 0..16 {
//!         let state = [0.0];
//!         let (action, log_prob) = agent.act(&state);
//!         let reward = -(action[0] - 0.5).powi(2);
//!         let value = agent.value(&state);
//!         buffer.push(&state, &action, log_prob, reward, value, true);
//!     }
//!     agent.update(&mut buffer);
//! }
//! let a = agent.act_deterministic(&[0.0]);
//! assert!((a[0] - 0.5).abs() < 0.4);
//! ```

mod buffer;
mod norm;
mod policy;
mod ppo;

pub use buffer::{RolloutBuffer, Transition};
pub use norm::RunningNorm;
pub use policy::GaussianPolicy;
pub use ppo::{AgentFullState, AgentSnapshot, AgentStateError, PpoAgent, PpoConfig, SnapshotError};

#[cfg(test)]
mod proptests;
