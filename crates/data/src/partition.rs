//! Federated partitioners: how a global dataset is distributed across edge
//! nodes.
//!
//! The paper's small-scale experiment distributes training data "randomly
//! among the edge nodes" (IID); the crate additionally provides the two
//! standard non-IID splits used in the federated-learning literature so the
//! simulator can inject heterogeneity.

use crate::SyntheticDataset;
use chiron_tensor::TensorRng;
use rand_distr::{Dirichlet, Distribution};

/// A partitioning strategy across `n` edge nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Partition {
    /// Uniform random split into equal shares (the paper's setting).
    Iid,
    /// Label-skewed split: per-class proportions drawn from a symmetric
    /// Dirichlet with concentration `alpha` (smaller ⇒ more skew).
    Dirichlet {
        /// Concentration parameter; must be positive.
        alpha: f64,
    },
    /// Size-skewed IID split: node `i` receives a share proportional to
    /// `i + 1` (heterogeneous data volumes, same label distribution).
    SizeSkewed,
}

/// Splits `data` into one shard per node according to `strategy`.
///
/// Every sample is assigned to exactly one node and every node receives at
/// least one sample.
///
/// # Panics
///
/// Panics if `nodes == 0`, `nodes > data.len()`, or a Dirichlet `alpha` is
/// not positive.
///
/// # Examples
///
/// ```
/// use chiron_data::{partition::{split, Partition}, DatasetSpec, SyntheticDataset};
///
/// let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 100, 0);
/// let shards = split(&data, 5, Partition::Iid, 1);
/// assert_eq!(shards.len(), 5);
/// assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 100);
/// ```
pub fn split(
    data: &SyntheticDataset,
    nodes: usize,
    strategy: Partition,
    seed: u64,
) -> Vec<SyntheticDataset> {
    assert!(nodes > 0, "need at least one node");
    assert!(
        nodes <= data.len(),
        "cannot split {} samples across {nodes} nodes",
        data.len()
    );
    let mut rng = TensorRng::seed_from(seed);
    let assignment: Vec<Vec<usize>> = match strategy {
        Partition::Iid => iid_assignment(data.len(), nodes, &mut rng),
        Partition::Dirichlet { alpha } => dirichlet_assignment(data, nodes, alpha, &mut rng),
        Partition::SizeSkewed => size_skewed_assignment(data.len(), nodes, &mut rng),
    };
    assignment.iter().map(|idx| data.subset(idx)).collect()
}

fn iid_assignment(n: usize, nodes: usize, rng: &mut TensorRng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let base = n / nodes;
    let extra = n % nodes;
    let mut out = Vec::with_capacity(nodes);
    let mut cursor = 0;
    for i in 0..nodes {
        let take = base + usize::from(i < extra);
        out.push(order[cursor..cursor + take].to_vec());
        cursor += take;
    }
    out
}

fn size_skewed_assignment(n: usize, nodes: usize, rng: &mut TensorRng) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let total_weight: usize = (1..=nodes).sum();
    let mut out = Vec::with_capacity(nodes);
    let mut cursor = 0;
    for i in 0..nodes {
        let mut take = n * (i + 1) / total_weight;
        take = take.max(1);
        if i == nodes - 1 || cursor + take > n {
            take = n - cursor - (nodes - 1 - i); // leave ≥1 for the rest
        }
        out.push(order[cursor..cursor + take].to_vec());
        cursor += take;
    }
    // Distribute any remainder to the last node.
    if cursor < n {
        out.last_mut().expect("nodes > 0").extend(&order[cursor..]);
    }
    out
}

fn dirichlet_assignment(
    data: &SyntheticDataset,
    nodes: usize,
    alpha: f64,
    rng: &mut TensorRng,
) -> Vec<Vec<usize>> {
    assert!(alpha > 0.0, "Dirichlet alpha must be positive, got {alpha}");
    if nodes == 1 {
        return vec![(0..data.len()).collect()];
    }
    let classes = data.spec().classes;
    // Group sample indices by label.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); classes];
    for (i, &l) in data.labels().iter().enumerate() {
        by_class[l].push(i);
    }
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); nodes];
    let dirichlet =
        Dirichlet::new(&vec![alpha; nodes]).expect("valid symmetric Dirichlet parameters");
    for mut class_indices in by_class {
        rng.shuffle(&mut class_indices);
        let proportions = dirichlet.sample(rng.inner());
        let mut cursor = 0usize;
        let total = class_indices.len();
        for (node, &p) in proportions.iter().enumerate() {
            let take = if node == nodes - 1 {
                total - cursor
            } else {
                ((total as f64) * p).floor() as usize
            };
            let take = take.min(total - cursor);
            out[node].extend(&class_indices[cursor..cursor + take]);
            cursor += take;
        }
    }
    // Guarantee non-empty shards: steal one sample from the largest shard.
    for i in 0..nodes {
        if out[i].is_empty() {
            let donor = (0..nodes).max_by_key(|&j| out[j].len()).expect("nodes > 0");
            assert!(out[donor].len() > 1, "not enough samples to fill all nodes");
            let moved = out[donor].pop().expect("donor non-empty");
            out[i].push(moved);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DatasetSpec;

    fn data(n: usize) -> SyntheticDataset {
        SyntheticDataset::generate(&DatasetSpec::tiny(), n, 42)
    }

    fn assert_exact_cover(shards: &[SyntheticDataset], total: usize) {
        let sum: usize = shards.iter().map(|s| s.len()).sum();
        assert_eq!(sum, total);
        assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn iid_split_is_balanced() {
        let d = data(103);
        let shards = split(&d, 5, Partition::Iid, 7);
        assert_exact_cover(&shards, 103);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    }

    #[test]
    fn iid_split_is_deterministic() {
        let d = data(50);
        let a = split(&d, 4, Partition::Iid, 1);
        let b = split(&d, 4, Partition::Iid, 1);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn size_skewed_is_increasing() {
        let d = data(200);
        let shards = split(&d, 4, Partition::SizeSkewed, 3);
        assert_exact_cover(&shards, 200);
        let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1], "sizes must be non-decreasing: {sizes:?}");
        }
    }

    #[test]
    fn dirichlet_low_alpha_skews_labels() {
        let d = data(400);
        let shards = split(&d, 4, Partition::Dirichlet { alpha: 0.1 }, 5);
        assert_exact_cover(&shards, 400);
        // With alpha = 0.1 at least one shard should be heavily dominated by
        // a single class (majority share > 50 %).
        let dominated = shards.iter().any(|s| {
            let mut counts = vec![0usize; s.spec().classes];
            for &l in s.labels() {
                counts[l] += 1;
            }
            let max = *counts.iter().max().unwrap();
            max * 2 > s.len()
        });
        assert!(dominated, "expected label skew at alpha = 0.1");
    }

    #[test]
    fn dirichlet_high_alpha_is_roughly_uniform() {
        let d = data(400);
        let shards = split(&d, 4, Partition::Dirichlet { alpha: 100.0 }, 6);
        assert_exact_cover(&shards, 400);
        for s in &shards {
            assert!(
                s.len() > 400 / 4 / 2,
                "alpha=100 shard too small: {}",
                s.len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn more_nodes_than_samples_rejected() {
        let d = data(4);
        let _ = split(&d, 10, Partition::Iid, 0);
    }
}
