//! Synthetic dataset generation and minibatch access.

use crate::{DatasetSpec, Difficulty};
use chiron_tensor::{Tensor, TensorRng};

/// An in-memory labeled image dataset produced by the synthetic generator.
///
/// Samples are stored flat in `(N, C, H, W)` order. Generation is
/// deterministic in `(spec, seed)`: class prototypes are smooth random
/// fields drawn once, and each sample is a randomly chosen intra-class mode
/// plus per-pixel noise, with separability controlled by
/// [`Difficulty`].
///
/// # Examples
///
/// ```
/// use chiron_data::{DatasetSpec, SyntheticDataset};
///
/// let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 64, 7);
/// let (train, test) = data.split(0.75);
/// assert_eq!(train.len(), 48);
/// assert_eq!(test.len(), 16);
/// ```
#[derive(Clone)]
pub struct SyntheticDataset {
    spec: DatasetSpec,
    images: Vec<f32>,
    labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates `n` samples with balanced class labels.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(spec: &DatasetSpec, n: usize, seed: u64) -> Self {
        assert!(n > 0, "cannot generate an empty dataset");
        let mut rng = TensorRng::seed_from(seed);
        let prototypes = Self::make_prototypes(spec, &mut rng);
        let pixels = spec.pixels();
        let mut images = Vec::with_capacity(n * pixels);
        let mut labels = Vec::with_capacity(n);
        let Difficulty {
            noise_std,
            modes_per_class,
            label_noise,
            ..
        } = spec.difficulty;

        for i in 0..n {
            let class = i % spec.classes;
            let mode = rng.index(modes_per_class);
            let proto = &prototypes[class * modes_per_class + mode];
            for &p in proto {
                images.push(p + (rng.normal() as f32) * noise_std);
            }
            // Label noise caps the Bayes-optimal accuracy at the profile's
            // asymptote; see `Difficulty::label_noise`. The two draws are
            // unconditional so the RNG stream (and hence the images and the
            // shuffle below) is identical across noise settings.
            let flip = rng.uniform(0.0, 1.0) < label_noise as f64;
            let random_label = rng.index(spec.classes);
            labels.push(if flip { random_label } else { class });
        }

        // Shuffle sample order so minibatches are class-mixed.
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let mut shuffled_images = vec![0.0f32; images.len()];
        let mut shuffled_labels = vec![0usize; n];
        for (dst, &src) in order.iter().enumerate() {
            shuffled_images[dst * pixels..(dst + 1) * pixels]
                .copy_from_slice(&images[src * pixels..(src + 1) * pixels]);
            shuffled_labels[dst] = labels[src];
        }

        Self {
            spec: spec.clone(),
            images: shuffled_images,
            labels: shuffled_labels,
        }
    }

    /// Smooth per-class (and per-mode) prototypes: sums of random Gaussian
    /// bumps, scaled by the profile's `prototype_scale`.
    fn make_prototypes(spec: &DatasetSpec, rng: &mut TensorRng) -> Vec<Vec<f32>> {
        let (c, h, w) = (spec.channels, spec.height, spec.width);
        let scale = spec.difficulty.prototype_scale;
        let n_protos = spec.classes * spec.difficulty.modes_per_class;
        let mut out = Vec::with_capacity(n_protos);
        for _ in 0..n_protos {
            let mut proto = vec![0.0f32; c * h * w];
            // 4 bumps per channel gives visibly distinct smooth patterns.
            for ch in 0..c {
                for _ in 0..4 {
                    let cy = rng.uniform(0.0, h as f64);
                    let cx = rng.uniform(0.0, w as f64);
                    let amp = rng.normal() as f32 * scale;
                    let sigma = rng.uniform(1.5, (h as f64 / 3.0).max(2.0));
                    let inv = 1.0 / (2.0 * sigma * sigma);
                    for y in 0..h {
                        for x in 0..w {
                            let d2 = (y as f64 - cy).powi(2) + (x as f64 - cx).powi(2);
                            proto[ch * h * w + y * w + x] += amp * (-d2 * inv).exp() as f32;
                        }
                    }
                }
            }
            out.push(proto);
        }
        out
    }

    /// Builds a dataset from raw parts — the entry point used by the real
    /// dataset file loaders ([`crate::loaders`]).
    ///
    /// # Panics
    ///
    /// Panics if `images.len() != labels.len() × spec.pixels()` or any
    /// label is out of range.
    pub fn from_parts(spec: DatasetSpec, images: Vec<f32>, labels: Vec<usize>) -> Self {
        assert!(!labels.is_empty(), "dataset must have at least one sample");
        assert_eq!(
            images.len(),
            labels.len() * spec.pixels(),
            "images carry {} floats but {} samples × {} pixels were expected",
            images.len(),
            labels.len(),
            spec.pixels()
        );
        assert!(
            labels.iter().all(|&l| l < spec.classes),
            "a label exceeds the profile's {} classes",
            spec.classes
        );
        Self {
            spec,
            images,
            labels,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples (never produced by `generate`).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The dataset's profile.
    pub fn spec(&self) -> &DatasetSpec {
        &self.spec
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Builds the `(X, y)` minibatch for the given sample indices, with `X`
    /// shaped `(B, C, H, W)`.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    pub fn batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        assert!(!indices.is_empty(), "batch needs at least one index");
        let pixels = self.spec.pixels();
        let mut data = Vec::with_capacity(indices.len() * pixels);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range ({})", self.len());
            data.extend_from_slice(&self.images[i * pixels..(i + 1) * pixels]);
            labels.push(self.labels[i]);
        }
        let x = Tensor::from_vec(
            data,
            &[
                indices.len(),
                self.spec.channels,
                self.spec.height,
                self.spec.width,
            ],
        );
        (x, labels)
    }

    /// Sequential minibatch index chunks of `batch_size` covering the whole
    /// dataset (the final chunk may be smaller).
    pub fn batch_indices(&self, batch_size: usize) -> Vec<Vec<usize>> {
        assert!(batch_size > 0, "batch size must be positive");
        (0..self.len())
            .collect::<Vec<_>>()
            .chunks(batch_size)
            .map(|c| c.to_vec())
            .collect()
    }

    /// Splits into `(first, second)` at `fraction` (e.g. 0.8 → 80 % train).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and both sides are non-empty.
    pub fn split(&self, fraction: f64) -> (SyntheticDataset, SyntheticDataset) {
        assert!((0.0..1.0).contains(&fraction) && fraction > 0.0);
        let cut = ((self.len() as f64) * fraction).round() as usize;
        assert!(cut > 0 && cut < self.len(), "split produces an empty side");
        let pixels = self.spec.pixels();
        let first = SyntheticDataset {
            spec: self.spec.clone(),
            images: self.images[..cut * pixels].to_vec(),
            labels: self.labels[..cut].to_vec(),
        };
        let second = SyntheticDataset {
            spec: self.spec.clone(),
            images: self.images[cut * pixels..].to_vec(),
            labels: self.labels[cut..].to_vec(),
        };
        (first, second)
    }

    /// Extracts the samples at `indices` into a new dataset (used by the
    /// federated partitioners).
    pub fn subset(&self, indices: &[usize]) -> SyntheticDataset {
        assert!(!indices.is_empty(), "subset needs at least one index");
        let pixels = self.spec.pixels();
        let mut images = Vec::with_capacity(indices.len() * pixels);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "index {i} out of range ({})", self.len());
            images.extend_from_slice(&self.images[i * pixels..(i + 1) * pixels]);
            labels.push(self.labels[i]);
        }
        SyntheticDataset {
            spec: self.spec.clone(),
            images,
            labels,
        }
    }
}

impl std::fmt::Debug for SyntheticDataset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SyntheticDataset({}, {} samples, {}x{}x{})",
            self.spec.kind,
            self.len(),
            self.spec.channels,
            self.spec.height,
            self.spec.width
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetSpec::tiny();
        let a = SyntheticDataset::generate(&spec, 40, 5);
        let b = SyntheticDataset::generate(&spec, 40, 5);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images, b.images);
        let c = SyntheticDataset::generate(&spec, 40, 6);
        assert_ne!(a.images, c.images);
    }

    #[test]
    fn labels_are_balanced_without_label_noise() {
        let mut spec = DatasetSpec::tiny();
        spec.difficulty.label_noise = 0.0;
        let data = SyntheticDataset::generate(&spec, 80, 1);
        let mut counts = vec![0usize; spec.classes];
        for &l in data.labels() {
            counts[l] += 1;
        }
        assert_eq!(counts, vec![20; 4]);
    }

    #[test]
    fn label_noise_corrupts_expected_fraction() {
        let mut spec = DatasetSpec::tiny();
        spec.difficulty.label_noise = 0.5;
        let n = 4000;
        let data = SyntheticDataset::generate(&spec, n, 2);
        // Recover intended classes by position parity is impossible after
        // the shuffle, so compare against a noise-free twin instead.
        spec.difficulty.label_noise = 0.0;
        let clean = SyntheticDataset::generate(&spec, n, 2);
        let differing = data
            .labels()
            .iter()
            .zip(clean.labels())
            .filter(|(a, b)| a != b)
            .count();
        // 50 % flips, of which 1/4 land on the true class → ~37.5 % differ.
        let frac = differing as f64 / n as f64;
        assert!((0.30..0.45).contains(&frac), "corrupted fraction {frac}");
    }

    #[test]
    fn batch_shapes_match_spec() {
        let data = SyntheticDataset::generate(&DatasetSpec::mnist_like(), 16, 2);
        let (x, y) = data.batch(&[0, 5, 9]);
        assert_eq!(x.dims(), &[3, 1, 28, 28]);
        assert_eq!(y.len(), 3);
        assert!(x.is_finite());
    }

    #[test]
    fn batch_indices_cover_everything_once() {
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 25, 3);
        let chunks = data.batch_indices(10);
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[2].len(), 5);
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn split_partitions_samples() {
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 40, 4);
        let (tr, te) = data.split(0.8);
        assert_eq!(tr.len(), 32);
        assert_eq!(te.len(), 8);
        assert_eq!(tr.spec(), data.spec());
    }

    #[test]
    fn subset_extracts_requested_samples() {
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 10, 8);
        let sub = data.subset(&[3, 7]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels()[0], data.labels()[3]);
        assert_eq!(sub.labels()[1], data.labels()[7]);
    }

    #[test]
    fn classes_are_separable_by_nearest_prototype() {
        // Same-class samples should be closer to each other on average than
        // cross-class samples — the property real datasets have and that
        // training exploits.
        let spec = DatasetSpec::tiny();
        let data = SyntheticDataset::generate(&spec, 120, 11);
        let pixels = spec.pixels();
        let img = |i: usize| &data.images[i * pixels..(i + 1) * pixels];
        let dist = |a: &[f32], b: &[f32]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
        };
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..40 {
            for j in (i + 1)..40 {
                let d = dist(img(i), img(j));
                if data.labels()[i] == data.labels()[j] {
                    same.push(d);
                } else {
                    diff.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) < mean(&diff),
            "same-class mean {} should be below cross-class mean {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_validates_indices() {
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 4, 0);
        let _ = data.batch(&[4]);
    }
}
