//! Dataset profiles: geometry, difficulty, and reference learning curves.

use serde::{Deserialize, Serialize};

/// Which paper dataset a profile emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// MNIST: 1×28×28, easy — accuracy saturates quickly.
    MnistLike,
    /// Fashion-MNIST: 1×28×28, moderate difficulty.
    FashionLike,
    /// CIFAR-10: 3×32×32, hard — slow curve, low asymptote (LeNet-scale).
    Cifar10Like,
    /// A tiny synthetic task used by fast tests, not a paper dataset.
    Tiny,
}

impl DatasetKind {
    /// All paper datasets, in the order the evaluation presents them.
    pub const PAPER_DATASETS: [DatasetKind; 3] = [
        DatasetKind::MnistLike,
        DatasetKind::FashionLike,
        DatasetKind::Cifar10Like,
    ];
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DatasetKind::MnistLike => "mnist",
            DatasetKind::FashionLike => "fashion-mnist",
            DatasetKind::Cifar10Like => "cifar-10",
            DatasetKind::Tiny => "tiny",
        };
        f.write_str(s)
    }
}

/// Knobs controlling how separable the synthetic classes are.
///
/// Lower `noise_std` and fewer `modes_per_class` make classification easier;
/// `prototype_scale` sets the distance between class prototypes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Difficulty {
    /// Standard deviation of additive per-pixel noise.
    pub noise_std: f32,
    /// Distance scale between class prototypes.
    pub prototype_scale: f32,
    /// Number of distinct sub-modes (intra-class variations) per class.
    pub modes_per_class: usize,
    /// Probability that a sample's label is replaced by a uniformly random
    /// one. Calibrated per profile so the Bayes-optimal test accuracy
    /// `(1 − p) + p/classes` matches the emulated dataset's asymptote
    /// (`LearningCurve::a_max`) — real MNIST/Fashion-MNIST/CIFAR-10 never
    /// reach 100 % with the paper's architectures, and neither should the
    /// synthetic stand-ins.
    pub label_noise: f32,
}

/// The reference accuracy-vs-rounds curve
/// `A(k) = a_max − (a_max − a_0)·exp(−rate·k)` used to calibrate the fast
/// accuracy oracle in `chiron-fedsim`.
///
/// The MNIST parameters are fitted to the paper's Table I (accuracy 0.916
/// after 16 rounds rising to 0.943 after 34 rounds ⇒ `a_max ≈ 0.96`,
/// `rate ≈ 0.05` per round at σ = 5 local epochs); Fashion-MNIST and
/// CIFAR-10 use the well-known asymptotes of the paper's architectures
/// (≈ 0.85 for the small CNN, ≈ 0.62 for LeNet).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LearningCurve {
    /// Asymptotic accuracy.
    pub a_max: f64,
    /// Accuracy at zero training (random guessing).
    pub a_0: f64,
    /// Exponential rate per unit of effective training (one full round of
    /// σ local epochs on all data ⇒ one unit).
    pub rate: f64,
}

impl LearningCurve {
    /// Accuracy after `effective_rounds` units of training.
    pub fn accuracy(&self, effective_rounds: f64) -> f64 {
        self.a_max - (self.a_max - self.a_0) * (-self.rate * effective_rounds).exp()
    }

    /// Inverse of [`LearningCurve::accuracy`]: the effective rounds needed
    /// to reach `accuracy` (which must lie in `[a_0, a_max)`).
    ///
    /// # Panics
    ///
    /// Panics if `accuracy` is outside `[a_0, a_max)`.
    pub fn rounds_to_reach(&self, accuracy: f64) -> f64 {
        assert!(
            accuracy >= self.a_0 && accuracy < self.a_max,
            "accuracy {accuracy} outside [{}, {})",
            self.a_0,
            self.a_max
        );
        -((self.a_max - accuracy) / (self.a_max - self.a_0)).ln() / self.rate
    }
}

/// A complete dataset profile: geometry, size, difficulty, and the
/// reference curve.
///
/// # Examples
///
/// ```
/// use chiron_data::DatasetSpec;
///
/// let spec = DatasetSpec::cifar10_like();
/// assert_eq!(spec.channels, 3);
/// assert_eq!(spec.bits_per_sample(), 3 * 32 * 32 * 8);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which paper dataset this emulates.
    pub kind: DatasetKind,
    /// Image channels (1 for MNIST-like, 3 for CIFAR-like).
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Number of classes.
    pub classes: usize,
    /// Canonical training-set size of the emulated dataset.
    pub train_size: usize,
    /// Difficulty knobs for the synthetic generator.
    pub difficulty: Difficulty,
    /// Reference learning curve for oracle calibration.
    pub curve: LearningCurve,
}

impl DatasetSpec {
    /// MNIST profile: 1×28×28, 10 classes, easy.
    pub fn mnist_like() -> Self {
        Self {
            kind: DatasetKind::MnistLike,
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
            train_size: 60_000,
            difficulty: Difficulty {
                noise_std: 0.25,
                prototype_scale: 1.0,
                modes_per_class: 1,
                label_noise: 0.033, // Bayes ceiling ≈ 0.97
            },
            curve: LearningCurve {
                a_max: 0.97,
                a_0: 0.10,
                rate: 0.16,
            },
        }
    }

    /// Fashion-MNIST profile: 1×28×28, 10 classes, moderate.
    pub fn fashion_like() -> Self {
        Self {
            kind: DatasetKind::FashionLike,
            channels: 1,
            height: 28,
            width: 28,
            classes: 10,
            train_size: 60_000,
            difficulty: Difficulty {
                noise_std: 0.45,
                prototype_scale: 0.8,
                modes_per_class: 2,
                label_noise: 0.144, // Bayes ceiling ≈ 0.87
            },
            curve: LearningCurve {
                a_max: 0.87,
                a_0: 0.10,
                rate: 0.12,
            },
        }
    }

    /// CIFAR-10 profile: 3×32×32, 10 classes, hard (LeNet-scale asymptote).
    pub fn cifar10_like() -> Self {
        Self {
            kind: DatasetKind::Cifar10Like,
            channels: 3,
            height: 32,
            width: 32,
            classes: 10,
            train_size: 50_000,
            difficulty: Difficulty {
                noise_std: 0.8,
                prototype_scale: 0.6,
                modes_per_class: 3,
                label_noise: 0.422, // Bayes ceiling ≈ 0.62
            },
            curve: LearningCurve {
                a_max: 0.62,
                a_0: 0.10,
                rate: 0.055,
            },
        }
    }

    /// A small, fast profile for unit tests: 1×8×8, 4 classes.
    pub fn tiny() -> Self {
        Self {
            kind: DatasetKind::Tiny,
            channels: 1,
            height: 8,
            width: 8,
            classes: 4,
            train_size: 400,
            difficulty: Difficulty {
                noise_std: 0.2,
                prototype_scale: 1.2,
                modes_per_class: 1,
                label_noise: 0.067, // Bayes ceiling ≈ 0.95
            },
            curve: LearningCurve {
                a_max: 0.95,
                a_0: 0.25,
                rate: 0.5,
            },
        }
    }

    /// Builds the profile for a [`DatasetKind`].
    pub fn for_kind(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::MnistLike => Self::mnist_like(),
            DatasetKind::FashionLike => Self::fashion_like(),
            DatasetKind::Cifar10Like => Self::cifar10_like(),
            DatasetKind::Tiny => Self::tiny(),
        }
    }

    /// Flattened pixel count per sample.
    pub fn pixels(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Bits of training data per sample (8-bit pixels), the `d` in the
    /// paper's computational model `T = σ·c·d/ζ`.
    pub fn bits_per_sample(&self) -> u64 {
        (self.pixels() as u64) * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometries() {
        let m = DatasetSpec::mnist_like();
        assert_eq!((m.channels, m.height, m.width, m.classes), (1, 28, 28, 10));
        let c = DatasetSpec::cifar10_like();
        assert_eq!((c.channels, c.height, c.width, c.classes), (3, 32, 32, 10));
        assert_eq!(m.bits_per_sample(), 6272);
        assert_eq!(c.bits_per_sample(), 24_576);
    }

    #[test]
    fn curve_is_monotone_with_diminishing_returns() {
        let curve = DatasetSpec::mnist_like().curve;
        let a1 = curve.accuracy(1.0);
        let a2 = curve.accuracy(2.0);
        let a10 = curve.accuracy(10.0);
        let a11 = curve.accuracy(11.0);
        assert!(a2 > a1);
        assert!(a11 > a10);
        // Marginal effect: early improvement beats late improvement.
        assert!((a2 - a1) > (a11 - a10));
        assert!((curve.accuracy(0.0) - curve.a_0).abs() < 1e-12);
        assert!(curve.accuracy(1e9) <= curve.a_max);
    }

    #[test]
    fn curve_ordering_matches_dataset_difficulty() {
        let m = DatasetSpec::mnist_like().curve;
        let f = DatasetSpec::fashion_like().curve;
        let c = DatasetSpec::cifar10_like().curve;
        for k in [5.0, 20.0, 50.0] {
            assert!(m.accuracy(k) > f.accuracy(k));
            assert!(f.accuracy(k) > c.accuracy(k));
        }
    }

    #[test]
    fn rounds_to_reach_inverts_accuracy() {
        let curve = DatasetSpec::fashion_like().curve;
        let k = curve.rounds_to_reach(0.8);
        assert!((curve.accuracy(k) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn mnist_curve_consistent_with_table_one_shape() {
        // Table I reports accuracy 0.916@16 → 0.943@34 rounds at 100 nodes.
        // The small-scale curve is faster but must preserve the band:
        // high accuracy in tens of rounds, visible marginal effect.
        let curve = DatasetSpec::mnist_like().curve;
        assert!(curve.accuracy(16.0) > 0.88);
        assert!(curve.accuracy(34.0) > curve.accuracy(16.0));
        assert!(curve.accuracy(34.0) < 0.97);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rounds_to_reach_validates_range() {
        let curve = DatasetSpec::mnist_like().curve;
        let _ = curve.rounds_to_reach(0.999);
    }

    #[test]
    fn display_names() {
        assert_eq!(DatasetKind::MnistLike.to_string(), "mnist");
        assert_eq!(DatasetKind::Cifar10Like.to_string(), "cifar-10");
    }
}
