//! Property-based tests for dataset generation and partitioning invariants.

use crate::loaders::load_idx;
use crate::partition::{split, Partition};
use crate::{DatasetSpec, SyntheticDataset};
use proptest::prelude::*;

/// Builds a syntactically valid IDX pair with arbitrary geometry.
fn idx_pair_bytes(n: usize, h: usize, w: usize, classes: usize) -> (Vec<u8>, Vec<u8>) {
    let mut images = Vec::new();
    images.extend(0x0803u32.to_be_bytes());
    images.extend((n as u32).to_be_bytes());
    images.extend((h as u32).to_be_bytes());
    images.extend((w as u32).to_be_bytes());
    for i in 0..n {
        images.extend(std::iter::repeat_n((i * 7 % 256) as u8, h * w));
    }
    let mut labels = Vec::new();
    labels.extend(0x0801u32.to_be_bytes());
    labels.extend((n as u32).to_be_bytes());
    labels.extend((0..n).map(|i| (i % classes) as u8));
    (images, labels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_partition_covers_exactly(
        n in 20usize..200,
        nodes in 1usize..8,
        seed in 0u64..1000,
        strategy_idx in 0usize..3,
    ) {
        prop_assume!(nodes <= n / 4); // leave room for non-empty shards
        let strategy = match strategy_idx {
            0 => Partition::Iid,
            1 => Partition::Dirichlet { alpha: 0.5 },
            _ => Partition::SizeSkewed,
        };
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), n, seed);
        let shards = split(&data, nodes, strategy, seed);
        prop_assert_eq!(shards.len(), nodes);
        let total: usize = shards.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n);
        prop_assert!(shards.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn generated_labels_in_range(n in 1usize..100, seed in 0u64..1000) {
        let spec = DatasetSpec::tiny();
        let data = SyntheticDataset::generate(&spec, n, seed);
        prop_assert!(data.labels().iter().all(|&l| l < spec.classes));
        prop_assert_eq!(data.len(), n);
    }

    #[test]
    fn learning_curves_monotone_everywhere(k in 0.0f64..200.0) {
        for spec in [
            DatasetSpec::mnist_like(),
            DatasetSpec::fashion_like(),
            DatasetSpec::cifar10_like(),
            DatasetSpec::tiny(),
        ] {
            let c = spec.curve;
            let a = c.accuracy(k);
            let b = c.accuracy(k + 0.5);
            prop_assert!(b >= a, "{:?} not monotone at {k}", spec.kind);
            prop_assert!((c.a_0..=c.a_max).contains(&a));
        }
    }

    #[test]
    fn idx_loader_round_trips_arbitrary_geometry(
        n in 1usize..30,
        h in 1usize..12,
        w in 1usize..12,
    ) {
        let mut spec = DatasetSpec::mnist_like();
        spec.height = h;
        spec.width = w;
        let (images, labels) = idx_pair_bytes(n, h, w, spec.classes);
        let data = load_idx(&images, &labels, &spec).expect("valid IDX");
        prop_assert_eq!(data.len(), n);
        prop_assert!(data.labels().iter().all(|&l| l < spec.classes));
        let (x, _) = data.batch(&[0]);
        prop_assert_eq!(x.dims(), &[1, 1, h, w]);
        // Pixel scaling stays in [0, 1].
        prop_assert!(x.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    /// Truncating a valid IDX image payload anywhere must yield an error,
    /// never a panic or a silently short dataset.
    #[test]
    fn idx_loader_rejects_any_truncation(
        n in 1usize..10,
        cut in 1usize..8,
    ) {
        let (mut images, labels) = idx_pair_bytes(n, 3, 3, 10);
        let cut = cut.min(images.len() - 1);
        images.truncate(images.len() - cut);
        let mut spec = DatasetSpec::mnist_like();
        spec.height = 3;
        spec.width = 3;
        prop_assert!(load_idx(&images, &labels, &spec).is_err());
    }

    #[test]
    fn batches_are_consistent_with_subset(
        n in 10usize..60,
        seed in 0u64..1000,
        idx in 0usize..10,
    ) {
        let data = SyntheticDataset::generate(&DatasetSpec::tiny(), n, seed);
        let i = idx % n;
        let (x, y) = data.batch(&[i]);
        let sub = data.subset(&[i]);
        let (sx, sy) = sub.batch(&[0]);
        prop_assert_eq!(x.as_slice(), sx.as_slice());
        prop_assert_eq!(y, sy);
    }
}

/// Deterministic pin of the checked-in proptest regression
/// (`proptest-regressions/proptests.txt`, shrinks to `n = 20, nodes = 1,
/// seed = 0`, Dirichlet): a single node must receive every sample even
/// when the Dirichlet draw concentrates all mass in one class.
#[test]
fn dirichlet_single_node_regression_covers_everything() {
    let data = SyntheticDataset::generate(&DatasetSpec::tiny(), 20, 0);
    let shards = split(&data, 1, Partition::Dirichlet { alpha: 0.5 }, 0);
    assert_eq!(shards.len(), 1);
    assert_eq!(shards[0].len(), 20);
    assert!(!shards[0].is_empty());
}
