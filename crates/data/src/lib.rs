//! # chiron-data
//!
//! Synthetic image-classification datasets and federated partitioners for
//! the Chiron (ICDCS 2021) reproduction.
//!
//! The paper evaluates on MNIST, Fashion-MNIST and CIFAR-10. Those datasets
//! are a download gate in this environment, so this crate substitutes
//! deterministic synthetic generators with matched **difficulty profiles**
//! (see `DESIGN.md` §2): each profile reproduces the paper dataset's input
//! geometry (1×28×28 or 3×32×32, 10 classes), its per-sample cost in bits
//! (which drives the edge-node economics), and its qualitative learning
//! curve (fast-saturating for MNIST-like data, slow and low-asymptote for
//! CIFAR-like data).
//!
//! * [`DatasetSpec`] — a profile: geometry, class count, difficulty knobs,
//!   and the reference accuracy curve used to calibrate the fast oracle.
//! * [`SyntheticDataset`] — generated samples with minibatch access.
//! * [`partition`] — IID, Dirichlet non-IID, and size-skewed splits across
//!   edge nodes.
//! * [`loaders`] — IDX (MNIST/Fashion-MNIST) and CIFAR-10 binary file
//!   parsers, so users who have the real datasets on disk can run every
//!   experiment on them.
//!
//! ## Example
//!
//! ```
//! use chiron_data::{DatasetSpec, SyntheticDataset};
//!
//! let spec = DatasetSpec::mnist_like();
//! let data = SyntheticDataset::generate(&spec, 100, 42);
//! assert_eq!(data.len(), 100);
//! let (x, y) = data.batch(&[0, 1, 2]);
//! assert_eq!(x.dims(), &[3, 1, 28, 28]);
//! assert_eq!(y.len(), 3);
//! ```

mod dataset;
pub mod loaders;
pub mod partition;
mod profile;

pub use dataset::SyntheticDataset;
pub use profile::{DatasetKind, DatasetSpec, Difficulty, LearningCurve};

#[cfg(test)]
mod proptests;
