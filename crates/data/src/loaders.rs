//! Real-dataset file loaders: IDX (MNIST/Fashion-MNIST) and the CIFAR-10
//! binary format.
//!
//! The reproduction ships synthetic stand-ins because the canonical
//! datasets are a download gate in its build environment, but a downstream
//! user who *has* the files can run every experiment on real data: these
//! loaders parse the standard on-disk formats into the same in-memory
//! dataset type the synthetic generator produces. No decompression is
//! performed — pass the already-`gunzip`ed files.

use crate::{DatasetSpec, SyntheticDataset};

/// Why a dataset file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// The file is shorter than its header claims.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// The magic number does not identify the expected format.
    BadMagic {
        /// Magic found.
        found: u32,
        /// Magic expected.
        expected: u32,
    },
    /// Image and label files disagree on the sample count.
    CountMismatch {
        /// Samples in the image file.
        images: usize,
        /// Samples in the label file.
        labels: usize,
    },
    /// The file's geometry does not match the profile.
    GeometryMismatch {
        /// `(rows, cols)` in the file.
        found: (usize, usize),
        /// `(rows, cols)` expected by the profile.
        expected: (usize, usize),
    },
    /// A label byte exceeds the profile's class count.
    LabelOutOfRange {
        /// The offending label.
        label: u8,
    },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Truncated { context } => write!(f, "file truncated while reading {context}"),
            LoadError::BadMagic { found, expected } => {
                write!(f, "bad magic {found:#x}, expected {expected:#x}")
            }
            LoadError::CountMismatch { images, labels } => {
                write!(f, "{images} images but {labels} labels")
            }
            LoadError::GeometryMismatch { found, expected } => {
                write!(f, "file is {found:?} pixels, profile expects {expected:?}")
            }
            LoadError::LabelOutOfRange { label } => write!(f, "label {label} out of range"),
        }
    }
}

impl std::error::Error for LoadError {}

const IDX_IMAGES_MAGIC: u32 = 0x0000_0803; // 2051
const IDX_LABELS_MAGIC: u32 = 0x0000_0801; // 2049

fn read_u32_be(bytes: &[u8], off: usize, context: &'static str) -> Result<u32, LoadError> {
    let slice = bytes
        .get(off..off + 4)
        .ok_or(LoadError::Truncated { context })?;
    Ok(u32::from_be_bytes([slice[0], slice[1], slice[2], slice[3]]))
}

/// Parses a pair of IDX byte buffers (images + labels, the MNIST and
/// Fashion-MNIST distribution format) into a dataset under `spec`.
///
/// Pixels are scaled from `0..=255` to `[0, 1]`.
///
/// # Errors
///
/// Returns a [`LoadError`] describing the first malformation found.
///
/// # Examples
///
/// ```
/// use chiron_data::{loaders, DatasetSpec};
///
/// // A minimal 1-sample IDX pair (1×1 "image", label 3 of a 10-class task).
/// let images = [&0x803u32.to_be_bytes()[..], &1u32.to_be_bytes(),
///               &1u32.to_be_bytes(), &1u32.to_be_bytes(), &[255u8]].concat();
/// let labels = [&0x801u32.to_be_bytes()[..], &1u32.to_be_bytes(), &[3u8]].concat();
/// let mut spec = DatasetSpec::mnist_like();
/// spec.height = 1;
/// spec.width = 1;
/// let data = loaders::load_idx(&images, &labels, &spec).expect("valid IDX");
/// assert_eq!(data.len(), 1);
/// assert_eq!(data.labels(), &[3]);
/// ```
pub fn load_idx(
    image_bytes: &[u8],
    label_bytes: &[u8],
    spec: &DatasetSpec,
) -> Result<SyntheticDataset, LoadError> {
    // --- image header ---
    let magic = read_u32_be(image_bytes, 0, "image magic")?;
    if magic != IDX_IMAGES_MAGIC {
        return Err(LoadError::BadMagic {
            found: magic,
            expected: IDX_IMAGES_MAGIC,
        });
    }
    let n = read_u32_be(image_bytes, 4, "image count")? as usize;
    let rows = read_u32_be(image_bytes, 8, "image rows")? as usize;
    let cols = read_u32_be(image_bytes, 12, "image cols")? as usize;
    if (rows, cols) != (spec.height, spec.width) {
        return Err(LoadError::GeometryMismatch {
            found: (rows, cols),
            expected: (spec.height, spec.width),
        });
    }
    let pixel_bytes = image_bytes
        .get(16..16 + n * rows * cols)
        .ok_or(LoadError::Truncated {
            context: "image pixels",
        })?;

    // --- label header ---
    let magic = read_u32_be(label_bytes, 0, "label magic")?;
    if magic != IDX_LABELS_MAGIC {
        return Err(LoadError::BadMagic {
            found: magic,
            expected: IDX_LABELS_MAGIC,
        });
    }
    let n_labels = read_u32_be(label_bytes, 4, "label count")? as usize;
    if n_labels != n {
        return Err(LoadError::CountMismatch {
            images: n,
            labels: n_labels,
        });
    }
    let label_data = label_bytes.get(8..8 + n).ok_or(LoadError::Truncated {
        context: "label bytes",
    })?;

    let images: Vec<f32> = pixel_bytes.iter().map(|&b| b as f32 / 255.0).collect();
    let mut labels = Vec::with_capacity(n);
    for &b in label_data {
        if (b as usize) >= spec.classes {
            return Err(LoadError::LabelOutOfRange { label: b });
        }
        labels.push(b as usize);
    }
    Ok(SyntheticDataset::from_parts(spec.clone(), images, labels))
}

/// Bytes per record in a CIFAR-10 binary batch: 1 label + 3×32×32 pixels.
const CIFAR_RECORD: usize = 1 + 3 * 32 * 32;

/// Parses one CIFAR-10 binary batch (`data_batch_N.bin` format: repeated
/// `label byte + 3072 channel-major pixel bytes`) under `spec`.
///
/// # Errors
///
/// Returns [`LoadError::Truncated`] if the buffer is not a whole number of
/// records (or empty), [`LoadError::GeometryMismatch`] if the profile is
/// not 3×32×32, or [`LoadError::LabelOutOfRange`] on a bad label.
pub fn load_cifar10_batch(bytes: &[u8], spec: &DatasetSpec) -> Result<SyntheticDataset, LoadError> {
    if (spec.channels, spec.height, spec.width) != (3, 32, 32) {
        return Err(LoadError::GeometryMismatch {
            found: (32, 32),
            expected: (spec.height, spec.width),
        });
    }
    if bytes.is_empty() || !bytes.len().is_multiple_of(CIFAR_RECORD) {
        return Err(LoadError::Truncated {
            context: "CIFAR-10 records",
        });
    }
    let n = bytes.len() / CIFAR_RECORD;
    let mut images = Vec::with_capacity(n * (CIFAR_RECORD - 1));
    let mut labels = Vec::with_capacity(n);
    for rec in bytes.chunks_exact(CIFAR_RECORD) {
        let label = rec[0];
        if (label as usize) >= spec.classes {
            return Err(LoadError::LabelOutOfRange { label });
        }
        labels.push(label as usize);
        // CIFAR stores channel-major (R plane, G plane, B plane), which is
        // exactly our (C, H, W) layout.
        images.extend(rec[1..].iter().map(|&b| b as f32 / 255.0));
    }
    Ok(SyntheticDataset::from_parts(spec.clone(), images, labels))
}

/// Loads an IDX image/label file pair from disk (uncompressed).
///
/// # Errors
///
/// I/O errors are passed through; parse errors are converted to
/// `io::ErrorKind::InvalidData`.
pub fn load_idx_files(
    image_path: impl AsRef<std::path::Path>,
    label_path: impl AsRef<std::path::Path>,
    spec: &DatasetSpec,
) -> std::io::Result<SyntheticDataset> {
    let images = std::fs::read(image_path)?;
    let labels = std::fs::read(label_path)?;
    load_idx(&images, &labels, spec)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an IDX pair with `n` `h×w` images whose pixel values are the
    /// sample index, labels cycling through `classes`.
    fn idx_pair(n: usize, h: usize, w: usize, classes: usize) -> (Vec<u8>, Vec<u8>) {
        let mut images = Vec::new();
        images.extend(IDX_IMAGES_MAGIC.to_be_bytes());
        images.extend((n as u32).to_be_bytes());
        images.extend((h as u32).to_be_bytes());
        images.extend((w as u32).to_be_bytes());
        for i in 0..n {
            images.extend(std::iter::repeat_n((i % 256) as u8, h * w));
        }
        let mut labels = Vec::new();
        labels.extend(IDX_LABELS_MAGIC.to_be_bytes());
        labels.extend((n as u32).to_be_bytes());
        labels.extend((0..n).map(|i| (i % classes) as u8));
        (images, labels)
    }

    fn tiny_spec(h: usize, w: usize) -> DatasetSpec {
        let mut spec = DatasetSpec::mnist_like();
        spec.height = h;
        spec.width = w;
        spec
    }

    #[test]
    fn idx_round_trip() {
        let (images, labels) = idx_pair(5, 4, 3, 10);
        let spec = tiny_spec(4, 3);
        let data = load_idx(&images, &labels, &spec).expect("valid");
        assert_eq!(data.len(), 5);
        assert_eq!(data.labels(), &[0, 1, 2, 3, 4]);
        let (x, y) = data.batch(&[2]);
        assert_eq!(y, vec![2]);
        // Pixels of sample 2 are 2/255.
        assert!(x.as_slice().iter().all(|&p| (p - 2.0 / 255.0).abs() < 1e-6));
    }

    #[test]
    fn idx_rejects_bad_magic() {
        let (mut images, labels) = idx_pair(1, 2, 2, 10);
        images[3] = 0x99;
        let err = load_idx(&images, &labels, &tiny_spec(2, 2)).expect_err("bad magic");
        assert!(matches!(err, LoadError::BadMagic { .. }));
    }

    #[test]
    fn idx_rejects_truncation() {
        let (mut images, labels) = idx_pair(3, 2, 2, 10);
        images.truncate(images.len() - 1);
        let err = load_idx(&images, &labels, &tiny_spec(2, 2)).expect_err("short");
        assert_eq!(
            err,
            LoadError::Truncated {
                context: "image pixels"
            }
        );
    }

    #[test]
    fn idx_rejects_count_mismatch() {
        let (images, _) = idx_pair(3, 2, 2, 10);
        let (_, labels) = idx_pair(4, 2, 2, 10);
        let err = load_idx(&images, &labels, &tiny_spec(2, 2)).expect_err("counts");
        assert_eq!(
            err,
            LoadError::CountMismatch {
                images: 3,
                labels: 4
            }
        );
    }

    #[test]
    fn idx_rejects_wrong_geometry() {
        let (images, labels) = idx_pair(2, 2, 2, 10);
        let err = load_idx(&images, &labels, &tiny_spec(28, 28)).expect_err("geometry");
        assert!(matches!(err, LoadError::GeometryMismatch { .. }));
    }

    #[test]
    fn idx_rejects_out_of_range_labels() {
        let (images, mut labels) = idx_pair(2, 2, 2, 10);
        let last = labels.len() - 1;
        labels[last] = 200;
        let err = load_idx(&images, &labels, &tiny_spec(2, 2)).expect_err("label");
        assert_eq!(err, LoadError::LabelOutOfRange { label: 200 });
    }

    #[test]
    fn cifar_batch_round_trip() {
        let spec = DatasetSpec::cifar10_like();
        let mut bytes = Vec::new();
        for i in 0..3u8 {
            bytes.push(i); // label
            bytes.extend(std::iter::repeat_n(i * 10, 3 * 32 * 32));
        }
        let data = load_cifar10_batch(&bytes, &spec).expect("valid");
        assert_eq!(data.len(), 3);
        assert_eq!(data.labels(), &[0, 1, 2]);
        let (x, _) = data.batch(&[1]);
        assert_eq!(x.dims(), &[1, 3, 32, 32]);
        assert!((x.as_slice()[0] - 10.0 / 255.0).abs() < 1e-6);
    }

    #[test]
    fn cifar_rejects_partial_records() {
        let spec = DatasetSpec::cifar10_like();
        let bytes = vec![0u8; CIFAR_RECORD + 5];
        assert!(matches!(
            load_cifar10_batch(&bytes, &spec),
            Err(LoadError::Truncated { .. })
        ));
    }

    #[test]
    fn cifar_rejects_non_cifar_profile() {
        let bytes = vec![0u8; CIFAR_RECORD];
        assert!(matches!(
            load_cifar10_batch(&bytes, &DatasetSpec::mnist_like()),
            Err(LoadError::GeometryMismatch { .. })
        ));
    }

    #[test]
    fn loaded_data_partitions_like_synthetic() {
        // The loaded dataset supports the same federated machinery.
        let (images, labels) = idx_pair(40, 2, 2, 10);
        let data = load_idx(&images, &labels, &tiny_spec(2, 2)).expect("valid");
        let shards = crate::partition::split(&data, 4, crate::partition::Partition::Iid, 1);
        assert_eq!(shards.iter().map(|s| s.len()).sum::<usize>(), 40);
    }

    #[test]
    fn file_loader_round_trips() {
        let dir = std::env::temp_dir().join("chiron_idx_test");
        std::fs::create_dir_all(&dir).expect("tmp");
        let (images, labels) = idx_pair(2, 2, 2, 10);
        let ip = dir.join("img.idx");
        let lp = dir.join("lbl.idx");
        std::fs::write(&ip, &images).expect("write");
        std::fs::write(&lp, &labels).expect("write");
        let data = load_idx_files(&ip, &lp, &tiny_spec(2, 2)).expect("load");
        assert_eq!(data.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
