//! Extending the simulator: plug a **custom accuracy oracle** into the
//! environment.
//!
//! The oracle below models a *concept-drift* task: accuracy follows the
//! usual saturating curve but suffers a one-off drop at a drift round,
//! after which learning resumes. It demonstrates the `AccuracyOracle`
//! extension point that also hosts the paper-calibrated `CurveOracle` and
//! the real-SGD `TrainingOracle`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_oracle
//! ```

use chiron_fedsim::oracle::RoundContext;
use chiron_repro::prelude::*;

/// A saturating learning curve with a concept-drift setback.
struct DriftOracle {
    curve: chiron_data::LearningCurve,
    effective_rounds: f64,
    drift_round: usize,
    drift_penalty: f64,
    accuracy: f64,
}

impl DriftOracle {
    fn new(spec: &DatasetSpec, drift_round: usize, drift_penalty: f64) -> Self {
        Self {
            curve: spec.curve,
            effective_rounds: 0.0,
            drift_round,
            drift_penalty,
            accuracy: spec.curve.a_0,
        }
    }
}

impl AccuracyOracle for DriftOracle {
    fn reset(&mut self) {
        self.effective_rounds = 0.0;
        self.accuracy = self.curve.a_0;
    }

    fn execute_round(&mut self, ctx: &RoundContext<'_>) -> f64 {
        self.effective_rounds += ctx.participation();
        if ctx.round == self.drift_round {
            // Concept drift: part of the learned signal becomes stale.
            let setback = self.effective_rounds * self.drift_penalty;
            self.effective_rounds -= setback;
        }
        self.accuracy = self.curve.accuracy(self.effective_rounds);
        self.accuracy
    }

    fn accuracy(&self) -> f64 {
        self.accuracy
    }
}

fn main() {
    let seed = 5;
    let spec = DatasetSpec::mnist_like();
    let oracle = DriftOracle::new(&spec, 8, 0.5);

    let config = EnvConfig {
        fleet: FleetConfig::paper(5),
        dataset: spec,
        sigma: 5,
        budget: 80.0,
        oracle_noise: 0.0,
        max_rounds: 100,
        channel: ChannelVariation::Static,
        participation: chiron_fedsim::Participation::Full,
    };
    let mut env = EdgeLearningEnv::with_oracle(config, Box::new(oracle), seed);

    // Chiron trains against the drifting environment like any other.
    let mut mechanism = Chiron::new(&env, ChironConfig::fast(), seed);
    mechanism.train(&mut env, 60);
    let (summary, records) = mechanism.run_episode(&mut env);

    println!("accuracy trajectory with concept drift at round 8:");
    for r in &records {
        let bar_len = (r.accuracy * 50.0) as usize;
        println!(
            "  round {:>2}  {:>6.3}  {}",
            r.round,
            r.accuracy,
            "#".repeat(bar_len)
        );
    }
    println!(
        "\nfinal accuracy {:.3} after {} rounds — note the dip at the \
         drift round and the recovery afterwards.",
        summary.final_accuracy, summary.rounds
    );
    let dip = records.windows(2).any(|w| w[1].accuracy < w[0].accuracy);
    assert!(dip, "the drift should be visible as an accuracy drop");
}
