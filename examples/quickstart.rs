//! Quickstart: train Chiron on a 5-node MNIST-like edge-learning task and
//! evaluate the learned pricing policy.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use chiron_repro::prelude::*;

fn main() {
    // The paper's small-scale setting: 5 heterogeneous edge nodes,
    // MNIST-like task, total incentive budget η = 100.
    let budget = 100.0;
    let seed = 42;
    let mut env =
        EdgeLearningEnv::new(EnvConfig::paper_small(DatasetKind::MnistLike, budget), seed);

    println!("environment: {env:?}");
    println!(
        "fleet: {} nodes, σ = {} local epochs, budget η = {budget}",
        env.num_nodes(),
        env.sigma()
    );
    for (i, node) in env.nodes().iter().enumerate() {
        let p = node.params();
        println!(
            "  node {i}: ζ_max {:.2} GHz, upload {:.1} s, reserve utility {:.3}",
            p.freq_max / 1e9,
            p.upload_time,
            p.reserve_utility
        );
    }

    // Train the hierarchical mechanism (the paper runs 500 episodes; 150
    // is enough to see the policy settle in this quickstart).
    let episodes = 150;
    let mut mechanism = Chiron::new(&env, ChironConfig::paper(), seed);
    println!("\ntraining Chiron for {episodes} episodes…");
    let rewards = mechanism.train(&mut env, episodes);
    let head = &rewards[..10];
    let tail = &rewards[rewards.len() - 10..];
    println!(
        "episode reward: first-10 mean {:.2} → last-10 mean {:.2}",
        head.iter().sum::<f64>() / head.len() as f64,
        tail.iter().sum::<f64>() / tail.len() as f64,
    );

    // Deterministic evaluation episode under the trained policy.
    let (summary, records) = mechanism.run_episode(&mut env);
    println!("\nevaluation under the trained policy:");
    println!("  rounds completed   : {}", summary.rounds);
    println!("  final accuracy     : {:.4}", summary.final_accuracy);
    println!("  total learning time: {:.1} s", summary.total_time);
    println!(
        "  mean time efficiency: {:.1} %",
        summary.mean_time_efficiency * 100.0
    );
    println!("  budget spent       : {:.1} / {budget}", summary.spent);

    println!("\nper-round trace (first 5 rounds):");
    println!(
        "  {:>5} {:>9} {:>9} {:>9} {:>9}",
        "round", "accuracy", "T_k (s)", "eff", "payment"
    );
    for r in records.iter().take(5) {
        println!(
            "  {:>5} {:>9.4} {:>9.1} {:>9.3} {:>9.2}",
            r.round, r.accuracy, r.round_time, r.time_efficiency, r.payment
        );
    }
}
