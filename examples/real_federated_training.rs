//! End-to-end pipeline with **real** federated training: the paper's
//! 21,840-parameter MNIST CNN trained with actual SGD on synthetic
//! MNIST-like shards, priced by Chiron through the [`TrainingOracle`].
//!
//! This is the substitution-validation example: the fast `CurveOracle`
//! used by the sweeps must produce the same qualitative behaviour as this
//! real-training path (see `DESIGN.md` §2). Scaled down (600 samples,
//! σ = 2) so it finishes in tens of seconds on a laptop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example real_federated_training
//! ```

use chiron_nn::models::mnist_cnn;
use chiron_repro::prelude::*;

fn main() {
    let seed = 3;
    let nodes = 3;
    let samples = 600;
    let budget = 40.0;

    // The real MNIST CNN from the paper (21,840 parameters).
    let model = mnist_cnn(&mut TensorRng::seed_from(seed));
    println!(
        "model: {} parameters ({})",
        model.num_params(),
        chiron_nn::models::MNIST_CNN_PARAMS
    );

    // Fashion-MNIST profile: same 1×28×28 geometry as MNIST but noisier
    // and multi-modal, so the CNN does not saturate within a few rounds
    // and the marginal effect stays visible.
    let spec = DatasetSpec::fashion_like();
    let oracle = TrainingOracle::new(
        &spec, model, nodes, samples, /* sigma */ 2, /* batch */ 10, /* lr */ 0.01,
        seed,
    );
    println!("shards: {:?} samples per node", oracle.shard_sizes());

    let config = EnvConfig {
        fleet: FleetConfig::paper(nodes),
        dataset: spec.clone(),
        sigma: 2,
        budget,
        oracle_noise: 0.0, // unused with a custom oracle
        max_rounds: 30,
        channel: ChannelVariation::Static,
        participation: chiron_fedsim::Participation::Full,
    };
    let mut env = EdgeLearningEnv::with_oracle(config, Box::new(oracle), seed);
    println!("initial (untrained) accuracy: {:.3}", env.accuracy());

    // Price every round with the Lemma-1 equalizing allocation at a fixed
    // pacing — a transparent policy, so every accuracy change below comes
    // from the real federated SGD.
    let mut mechanism = LemmaOracle::new(0.5);
    let (summary, records) = mechanism.run_episode(&mut env);

    println!("\nround-by-round real federated training:");
    println!(
        "  {:>5} {:>9} {:>9} {:>9}",
        "round", "accuracy", "T_k (s)", "payment"
    );
    for r in &records {
        println!(
            "  {:>5} {:>9.4} {:>9.1} {:>9.2}",
            r.round, r.accuracy, r.round_time, r.payment
        );
    }
    println!(
        "\nfinal accuracy {:.3} after {} rounds (budget spent {:.1}/{budget})",
        summary.final_accuracy, summary.rounds, summary.spent
    );

    // The qualitative property the fast oracle is calibrated to: real
    // training also shows diminishing per-round improvements.
    if records.len() >= 4 {
        let early = records[1].accuracy - records[0].accuracy;
        let late = records[records.len() - 1].accuracy - records[records.len() - 2].accuracy;
        println!("marginal effect: round-2 gain {early:+.4} vs final-round gain {late:+.4}");
    }
    assert!(
        summary.final_accuracy > 0.35,
        "real federated training should comfortably beat the 10 % random baseline"
    );
}
