//! Persistence: train Chiron, snapshot it to JSON, restore into a fresh
//! mechanism, and verify the restored policy prices identically — the
//! workflow for deploying a trained incentive mechanism.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example checkpoint_resume
//! ```

use chiron_repro::prelude::*;

fn main() {
    let seed = 13;
    let budget = 80.0;
    let make_env =
        || EdgeLearningEnv::new(EnvConfig::paper_small(DatasetKind::MnistLike, budget), seed);

    // Train.
    let mut env = make_env();
    let mut trained = Chiron::new(&env, ChironConfig::paper(), seed);
    println!("training for 100 episodes…");
    trained.train(&mut env, 100);
    let (before, _) = trained.run_episode(&mut make_env());
    println!(
        "trained policy: {} rounds, accuracy {:.4}",
        before.rounds, before.final_accuracy
    );

    // Snapshot to disk.
    let path = std::env::temp_dir().join("chiron_snapshot_demo.json");
    let json = trained.snapshot().to_json();
    std::fs::write(&path, &json).expect("write snapshot");
    println!(
        "snapshot written to {} ({} KiB)",
        path.display(),
        json.len() / 1024
    );

    // Restore into a freshly constructed mechanism (different seed — the
    // snapshot overwrites all learned parameters).
    let json = std::fs::read_to_string(&path).expect("read snapshot");
    let snapshot = ChironSnapshot::from_json(&json).expect("valid snapshot");
    let mut restored = Chiron::new(&make_env(), ChironConfig::paper(), seed + 999);
    snapshot
        .restore(&mut restored)
        .expect("matching architecture");
    println!(
        "restored mechanism reports {} episodes trained",
        restored.episodes_trained()
    );

    // The restored policy must behave identically.
    let (after, _) = restored.run_episode(&mut make_env());
    println!(
        "restored policy: {} rounds, accuracy {:.4}",
        after.rounds, after.final_accuracy
    );
    assert_eq!(before.rounds, after.rounds);
    assert!((before.final_accuracy - after.final_accuracy).abs() < 1e-12);
    println!("round-trip verified: identical evaluation behaviour ✓");

    // Fine-tuning resumes from the restored weights.
    let mut env = make_env();
    restored.train(&mut env, 10);
    println!(
        "fine-tuned 10 more episodes (now {} total)",
        restored.episodes_trained()
    );
    std::fs::remove_file(&path).ok();
}
