//! Scalability: Chiron at 100 edge nodes (the paper's Fig. 7 / Table I
//! setting), including the budget sweep over η ∈ {140, 220, 300, 380}.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example large_scale
//! ```

use chiron_repro::prelude::*;

fn main() {
    let seed = 42;
    let episodes = 300;

    let mut env = EdgeLearningEnv::new(EnvConfig::paper_large(DatasetKind::MnistLike, 300.0), seed);
    println!(
        "fleet: {} nodes (exterior state dim: 3·N·L + 2 = {})",
        env.num_nodes(),
        3 * env.num_nodes() * ChironConfig::paper().history_window + 2
    );

    let mut chiron = Chiron::new(&env, ChironConfig::paper(), seed);
    println!("training for {episodes} episodes…");
    let rewards = chiron.train(&mut env, episodes);

    // Convergence digest (Fig. 7a): decile means of the episode reward.
    println!("\nepisode-reward deciles (Fig. 7a shape — should rise, then flatten):");
    for (i, chunk) in rewards.chunks(episodes / 10).enumerate() {
        let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
        println!(
            "  episodes {:>3}–{:>3}: {:.2}",
            i * episodes / 10,
            (i + 1) * episodes / 10,
            mean
        );
    }

    // Table I: evaluate the trained policy across budgets.
    println!("\nTable I reproduction (MNIST, 100 nodes):");
    println!(
        "  {:>7} {:>9} {:>7} {:>16}",
        "η", "accuracy", "rounds", "time efficiency"
    );
    for budget in [140.0, 220.0, 300.0, 380.0] {
        let mut eval_env =
            EdgeLearningEnv::new(EnvConfig::paper_large(DatasetKind::MnistLike, budget), seed);
        let (s, _) = chiron.run_episode(&mut eval_env);
        println!(
            "  {:>7} {:>9.4} {:>7} {:>15.1}%",
            budget,
            s.final_accuracy,
            s.rounds,
            s.mean_time_efficiency * 100.0
        );
    }
    println!(
        "\npaper's Table I for reference: η=140→(0.916, 16, 71.3 %), \
         η=220→(0.929, 23, 72.2 %), η=300→(0.938, 31, 72.7 %), \
         η=380→(0.943, 34, 73.4 %)."
    );
    println!(
        "The ≈72-76 % efficiency ceiling is structural at 100 nodes: \
         shards are small, so rounds are dominated by the fixed 10–20 s \
         upload times that no pricing policy can equalize."
    );
}
