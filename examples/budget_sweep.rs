//! Budget sweep: a miniature of the paper's Fig. 4 — Chiron against the
//! DRL-based and Greedy baselines across incentive budgets on the
//! MNIST-like task.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example budget_sweep
//! ```

use chiron_repro::prelude::*;

const BUDGETS: [f64; 5] = [60.0, 80.0, 100.0, 120.0, 140.0];
const TRAIN_EPISODES: usize = 150;
const SEED: u64 = 7;

fn evaluate(name: &str, results: &[(f64, EpisodeSummary)]) {
    println!("\n{name}:");
    println!(
        "  {:>7} {:>9} {:>7} {:>10} {:>9}",
        "budget", "accuracy", "rounds", "time-eff %", "spent"
    );
    for (budget, s) in results {
        println!(
            "  {:>7} {:>9.4} {:>7} {:>10.1} {:>9.1}",
            budget,
            s.final_accuracy,
            s.rounds,
            s.mean_time_efficiency * 100.0,
            s.spent
        );
    }
}

fn main() {
    // Train each learner once at the middle budget, then evaluate the
    // frozen policy across the sweep — the protocol used by the
    // reproduction's fig4 bench as well.
    let train_env =
        || EdgeLearningEnv::new(EnvConfig::paper_small(DatasetKind::MnistLike, 100.0), SEED);

    let mut env = train_env();
    let mut chiron = Chiron::new(&env, ChironConfig::paper(), SEED);
    println!("training chiron ({TRAIN_EPISODES} episodes)…");
    chiron.train(&mut env, TRAIN_EPISODES);

    let mut env = train_env();
    let mut drl = DrlSingleRound::new(&env, SEED);
    println!("training drl-based ({TRAIN_EPISODES} episodes)…");
    drl.train(&mut env, TRAIN_EPISODES);

    let mut env = train_env();
    let mut greedy = Greedy::new(&env, SEED);
    println!("training greedy ({TRAIN_EPISODES} episodes)…");
    greedy.train(&mut env, TRAIN_EPISODES);

    let mechanisms: Vec<(&str, &mut dyn Mechanism)> = vec![
        ("chiron", &mut chiron),
        ("drl-based", &mut drl),
        ("greedy", &mut greedy),
    ];

    for (name, mechanism) in mechanisms {
        let mut rows = Vec::new();
        for &budget in &BUDGETS {
            let mut env =
                EdgeLearningEnv::new(EnvConfig::paper_small(DatasetKind::MnistLike, budget), SEED);
            let (summary, _) = mechanism.run_episode(&mut env);
            rows.push((budget, summary));
        }
        evaluate(name, &rows);
    }

    println!(
        "\nExpected shape (paper Fig. 4): Chiron dominates on accuracy at \
         every budget, completes ~2-3× the rounds, and keeps time \
         efficiency near 100 %, with the accuracy gap narrowing as the \
         budget grows."
    );
}
