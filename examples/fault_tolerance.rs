//! Robustness: drive a trained mechanism through a misbehaving fleet —
//! a transient outage, a permanent straggler, and a greedy node — and
//! audit the per-node economics with the [`chiron_fedsim::metrics::NodeLedger`].
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use chiron_fedsim::metrics::NodeLedger;
use chiron_repro::prelude::*;

fn run_audited(
    mech: &mut dyn Mechanism,
    env: &mut EdgeLearningEnv,
) -> (EpisodeSummary, NodeLedger) {
    env.reset();
    mech.begin_episode(env);
    let initial_accuracy = env.accuracy();
    let mut ledger = NodeLedger::new(env.num_nodes());
    let mut records = Vec::new();
    let mut spent = 0.0;
    loop {
        let prices = mech.decide_prices(env, false);
        let outcome = env.step(&prices);
        if outcome.status == StepStatus::BudgetExhausted {
            break;
        }
        ledger.record(&outcome);
        spent += outcome.payment_total;
        records.push(RoundRecord {
            round: outcome.round,
            accuracy: outcome.accuracy,
            round_time: outcome.round_time,
            time_efficiency: outcome.time_efficiency,
            payment: outcome.payment_total,
            spent,
            participants: outcome.num_participants(),
        });
        mech.observe(&outcome, &prices);
        if outcome.done() {
            break;
        }
    }
    (
        EpisodeSummary::from_rounds(&records, initial_accuracy, mech.lambda()),
        ledger,
    )
}

fn main() {
    let seed = 21;
    let budget = 100.0;
    let make_env =
        || EdgeLearningEnv::new(EnvConfig::paper_small(DatasetKind::MnistLike, budget), seed);

    // Train on a healthy fleet.
    let mut env = make_env();
    let mut mech = Chiron::new(&env, ChironConfig::paper(), seed);
    println!("training on a healthy fleet (150 episodes)…");
    mech.train(&mut env, 150);

    // Healthy evaluation for reference.
    let mut env = make_env();
    let (healthy, _) = run_audited(&mut mech, &mut env);
    println!(
        "healthy fleet : accuracy {:.4}, {} rounds, time efficiency {:.1} %",
        healthy.final_accuracy,
        healthy.rounds,
        healthy.mean_time_efficiency * 100.0
    );

    // Now the bad day: node 0's radio degrades permanently at round 3,
    // node 2 goes offline for rounds 5–8, node 4 triples its reserve
    // utility from round 10.
    let mut schedule = FaultSchedule::none();
    schedule.push(Fault::BandwidthCollapse {
        node: 0,
        factor: 3.0,
        from_round: 3,
    });
    schedule.push_transient(
        Fault::Dropout {
            node: 2,
            from_round: 5,
        },
        9,
    );
    schedule.push(Fault::ReserveSpike {
        node: 4,
        factor: 3.0,
        from_round: 10,
    });

    let mut env = make_env();
    env.set_faults(schedule).expect("valid schedule");
    let (faulty, ledger) = run_audited(&mut mech, &mut env);
    println!(
        "faulty fleet  : accuracy {:.4}, {} rounds, time efficiency {:.1} %",
        faulty.final_accuracy,
        faulty.rounds,
        faulty.mean_time_efficiency * 100.0
    );

    println!("\nper-node audit under faults:");
    println!(
        "  {:>4} {:>10} {:>10} {:>10} {:>8}",
        "node", "paid", "energy J", "utility", "rounds"
    );
    for i in 0..5 {
        println!(
            "  {:>4} {:>10.2} {:>10.2} {:>10.2} {:>8}",
            i,
            ledger.payments()[i],
            ledger.energies()[i],
            ledger.utilities()[i],
            ledger.rounds_participated()[i]
        );
    }
    println!(
        "\npayment fairness (Jain) {:.3}, utility fairness {:.3}",
        ledger.payment_fairness(),
        ledger.utility_fairness()
    );

    assert!(faulty.spent <= budget + 1e-6, "budget must survive faults");
    // Note: a faulty fleet can end up with *more* rounds (and sometimes
    // more accuracy) than a healthy one — nodes that decline are not paid,
    // so the budget stretches further. What must hold is the accounting
    // and that the straggler dragged down time efficiency.
    assert!(
        faulty.mean_time_efficiency <= healthy.mean_time_efficiency + 1e-9,
        "a 3× straggler cannot improve time efficiency"
    );
    println!("\nbudget accounting verified under all faults ✓");
}
