//! # chiron-repro
//!
//! Root crate of the reproduction of **"Incentive-Driven Long-term
//! Optimization for Edge Learning by Hierarchical Reinforcement
//! Mechanism"** (Chiron, ICDCS 2021).
//!
//! This crate re-exports every workspace component so downstream users can
//! depend on a single crate, and hosts the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`tensor`](chiron_tensor) | dense `f32` tensors, matmul, im2col |
//! | [`nn`](chiron_nn) | layers, losses, optimizers, the paper's CNNs |
//! | [`data`](chiron_data) | synthetic dataset profiles + partitioners |
//! | [`fedsim`](chiron_fedsim) | node economics, FedAvg, oracles, env |
//! | [`drl`](chiron_drl) | Gaussian policies, rollout buffers, PPO |
//! | [`chiron`] | the hierarchical mechanism (the contribution) |
//! | [`baselines`](chiron_baselines) | DRL-based, Greedy, static references |
//!
//! ## Quickstart
//!
//! ```
//! use chiron_repro::prelude::*;
//!
//! let mut env = EdgeLearningEnv::new(
//!     EnvConfig::paper_small(DatasetKind::MnistLike, 60.0), 42);
//! let mut mechanism = Chiron::new(&env, ChironConfig::fast(), 42);
//! mechanism.train(&mut env, 5); // 500 in the paper
//! let (summary, _rounds) = mechanism.run_episode(&mut env);
//! assert!(summary.spent <= 60.0);
//! ```

pub use chiron;
pub use chiron_baselines;
pub use chiron_data;
pub use chiron_drl;
pub use chiron_fedsim;
pub use chiron_nn;
pub use chiron_telemetry;
pub use chiron_tensor;

/// The most common imports for working with the reproduction.
pub mod prelude {
    pub use chiron::{
        ablation::FlatPpo, exterior_reward, inner_reward, Chiron, ChironConfig,
        ChironConfigBuilder, ChironSnapshot, ConfigError, EpisodeRun, Error, Mechanism,
        MechanismParams, RecoveryOptions, ResumeError, RunCheckpoint, DEFAULT_LAMBDA,
    };
    pub use chiron_baselines::{
        build_by_id, find, parse_ids, registry, DpPlanner, DrlSingleRound, FMoreAuction,
        FMoreConfig, Greedy, LemmaOracle, MechanismError, MechanismSpec, StackelbergConfig,
        StackelbergPricing, StaticPrice,
    };
    pub use chiron_data::{DatasetKind, DatasetSpec, SyntheticDataset};
    pub use chiron_drl::{
        AgentFullState, AgentSnapshot, AgentStateError, PpoAgent, PpoConfig, RolloutBuffer,
        RunningNorm,
    };
    pub use chiron_fedsim::{
        faults::{
            Fault, FaultProcessConfig, FaultSchedule, FaultScheduleError, GilbertElliott,
            ReserveDrift, UploadJitter,
        },
        fleet::{DataVolumes, FleetConfig, UploadModel},
        metrics::{EpisodeSummary, EventLog, ResilienceEvent, RoundRecord},
        oracle::{AccuracyOracle, CurveOracle, TrainingOracle},
        BudgetLedger, ChannelVariation, EdgeLearningEnv, EdgeNode, EnvConfig, EnvState, NodeParams,
        ResilienceConfig, StepStatus,
    };
    pub use chiron_nn::{write_atomic, Checkpoint, Layer, Optimizer, Sequential};
    pub use chiron_telemetry::{Record, RingBufferSink, RuntimeConfig, Sink, TelemetrySession};
    pub use chiron_tensor::{Tensor, TensorRng};
}
